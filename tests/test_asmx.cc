// Tests for the x86-64 instruction model: register naming, AT&T printing,
// parsing, printer∘parser round-trips and instruction properties.
#include "asmx/instruction.h"

#include <gtest/gtest.h>

#include "asmx/reg.h"

namespace cati::asmx {
namespace {

TEST(Reg, GpNamesAtAllWidths) {
  EXPECT_EQ(regName(Reg::Rax, Width::B8), "rax");
  EXPECT_EQ(regName(Reg::Rax, Width::B4), "eax");
  EXPECT_EQ(regName(Reg::Rax, Width::B2), "ax");
  EXPECT_EQ(regName(Reg::Rax, Width::B1), "al");
  EXPECT_EQ(regName(Reg::R10, Width::B8), "r10");
  EXPECT_EQ(regName(Reg::R10, Width::B4), "r10d");
  EXPECT_EQ(regName(Reg::R10, Width::B2), "r10w");
  EXPECT_EQ(regName(Reg::R10, Width::B1), "r10b");
  EXPECT_EQ(regName(Reg::Rsi, Width::B1), "sil");
  EXPECT_EQ(regName(Reg::Rbp, Width::B8), "rbp");
}

TEST(Reg, SpecialNames) {
  EXPECT_EQ(regName(Reg::Rip, Width::B8), "rip");
  EXPECT_EQ(regName(Reg::Xmm0, Width::B16), "xmm0");
  EXPECT_EQ(regName(Reg::Xmm15, Width::B16), "xmm15");
  EXPECT_EQ(regName(Reg::St0, Width::B10), "st");
  EXPECT_EQ(regName(Reg::St3, Width::B10), "st(3)");
}

TEST(Reg, NameRoundTripAllGpWidths) {
  for (int r = static_cast<int>(Reg::Rax); r <= static_cast<int>(Reg::R15);
       ++r) {
    for (const Width w : {Width::B8, Width::B4, Width::B2, Width::B1}) {
      const auto reg = static_cast<Reg>(r);
      const auto parsed = regFromName(regName(reg, w));
      ASSERT_TRUE(parsed.has_value()) << regName(reg, w);
      EXPECT_EQ(parsed->reg, reg);
      EXPECT_EQ(parsed->width, w);
    }
  }
}

TEST(Reg, BadNamesRejected) {
  EXPECT_FALSE(regFromName("").has_value());
  EXPECT_FALSE(regFromName("rqx").has_value());
  EXPECT_FALSE(regFromName("xmm16").has_value());
  EXPECT_FALSE(regFromName("st(8)").has_value());
  EXPECT_FALSE(regFromName("xmmx").has_value());
}

TEST(Instruction, PrintBasicForms) {
  EXPECT_EQ(toString({"mov", Operand::r(Reg::Rax, Width::B8),
                      Operand::m(Reg::Rsp, 0xb0)}),
            "mov %rax,0xb0(%rsp)");
  EXPECT_EQ(toString({"movl", Operand::i(0x100), Operand::m(Reg::Rsp, 0xb8)}),
            "movl $0x100,0xb8(%rsp)");
  EXPECT_EQ(toString({"movb", Operand::i(0), Operand::m(Reg::Rsp, 0xc0)}),
            "movb $0x0,0xc0(%rsp)");
  EXPECT_EQ(toString({"add", Operand::i(-0xd0), Operand::r(Reg::Rax, Width::B8)}),
            "add $-0xd0,%rax");
  EXPECT_EQ(toString(Instruction{"ret"}), "ret");
}

TEST(Instruction, PrintScaledMemOperand) {
  MemRef m;
  m.base = {Reg::Rbp, Width::B8};
  m.index = {Reg::R9, Width::B8};
  m.scale = 4;
  m.disp = -0x300;
  EXPECT_EQ(toString({"lea", Operand::m(m), Operand::r(Reg::Rax, Width::B8)}),
            "lea -0x300(%rbp,%r9,4),%rax");
}

TEST(Instruction, PrintCallWithSymbol) {
  EXPECT_EQ(toString({"callq", Operand::addr(0x3bc59),
                      Operand::func("bfd_zalloc")}),
            "callq 3bc59 <bfd_zalloc>");
}

TEST(Instruction, PrintNegativeRbpDisp) {
  EXPECT_EQ(toString({"movl", Operand::i(5), Operand::m(Reg::Rbp, -0x14)}),
            "movl $0x5,-0x14(%rbp)");
}

TEST(Instruction, ParseBasic) {
  const auto ins = parse("mov %rax,0xb0(%rsp)");
  ASSERT_TRUE(ins.has_value());
  EXPECT_EQ(ins->mnem, "mov");
  EXPECT_EQ(ins->ops[0].kind, Operand::Kind::Reg);
  EXPECT_EQ(ins->ops[0].reg.reg, Reg::Rax);
  EXPECT_EQ(ins->ops[1].kind, Operand::Kind::Mem);
  EXPECT_EQ(ins->ops[1].mem.base.reg, Reg::Rsp);
  EXPECT_EQ(ins->ops[1].mem.disp, 0xb0);
}

TEST(Instruction, ParseRejectsGarbage) {
  EXPECT_FALSE(parse("").has_value());
  EXPECT_FALSE(parse("mov %nosuch,%rax").has_value());
  EXPECT_FALSE(parse("mov $zz,%rax").has_value());
  EXPECT_FALSE(parse("mov %rax,%rbx,%rcx").has_value());
}

// Property: printing then parsing reproduces the instruction exactly, over a
// generated set covering every operand kind.
class RoundTrip : public ::testing::TestWithParam<Instruction> {};

TEST_P(RoundTrip, PrintParseIdentity) {
  const Instruction& ins = GetParam();
  const auto back = parse(toString(ins));
  ASSERT_TRUE(back.has_value()) << toString(ins);
  EXPECT_EQ(*back, ins) << toString(ins);
}

std::vector<Instruction> roundTripCases() {
  std::vector<Instruction> v;
  v.emplace_back("ret");
  v.emplace_back("leave");
  v.push_back({"push", Operand::r(Reg::Rbp, Width::B8)});
  v.push_back({"jmp", Operand::addr(0x3bc59)});
  v.push_back({"je", Operand::addr(0x4179f5)});
  v.push_back({"callq", Operand::addr(0x4044d0), Operand::func("memchr")});
  v.push_back({"mov", Operand::r(Reg::Rax, Width::B8), Operand::m(Reg::Rsp, 0xc8)});
  v.push_back({"movzbl", Operand::m(Reg::Rbp, -0x21), Operand::r(Reg::Rax, Width::B4)});
  v.push_back({"movss", Operand::m(Reg::Rip, 0x2f60), Operand::r(Reg::Xmm3, Width::B16)});
  v.push_back({"fstpt", Operand::m(Reg::Rsp, 0x40)});
  v.push_back({"movl", Operand::i(0), Operand::r(Reg::Rax, Width::B4)});
  v.push_back({"xorl", Operand::r(Reg::Rax, Width::B4), Operand::r(Reg::Rax, Width::B4)});
  v.push_back({"sete", Operand::r(Reg::Rax, Width::B1)});
  v.push_back({"cmpq", Operand::i(0), Operand::m(Reg::Rsp, 0x18)});
  v.push_back({"imulq", Operand::i(0x18), Operand::r(Reg::Rdx, Width::B8)});
  {
    MemRef m;
    m.base = {Reg::Rdi, Width::B8};
    m.index = {Reg::Rsi, Width::B8};
    m.scale = 1;
    v.push_back({"lea", Operand::m(m), Operand::r(Reg::R15, Width::B8)});
  }
  {
    MemRef m;
    m.base = {Reg::Rax, Width::B8};
    m.index = {Reg::Rcx, Width::B8};
    m.scale = 8;
    m.disp = 0x10;
    v.push_back({"mov", Operand::m(m), Operand::r(Reg::Rdx, Width::B8)});
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(AllOperandKinds, RoundTrip,
                         ::testing::ValuesIn(roundTripCases()));

TEST(Instruction, ParseListing) {
  const auto insns = parseListing(
      "# prologue\n"
      "push %rbp\n"
      "mov %rsp,%rbp\n"
      "\n"
      "movl $0x5,-0x14(%rbp)\n");
  ASSERT_EQ(insns.size(), 3U);
  EXPECT_EQ(insns[2].mnem, "movl");
}

TEST(Instruction, ParseListingReportsLine) {
  try {
    parseListing("ret\nbogus %%%\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Properties, CallJumpLea) {
  EXPECT_TRUE(isCall(*parse("callq 4044d0 <memchr>")));
  EXPECT_FALSE(isJump(*parse("callq 4044d0 <memchr>")));
  EXPECT_TRUE(isJump(*parse("jmp 3bc59")));
  EXPECT_TRUE(isJump(*parse("je 3bc59")));
  EXPECT_TRUE(isJump(*parse("ja 3bc59")));
  EXPECT_FALSE(isJump(*parse("mov %rax,%rbx")));
  EXPECT_TRUE(isLea(*parse("lea 0x220(%rsp),%rax")));
}

TEST(Properties, MemOperandIndex) {
  EXPECT_EQ(memOperandIndex(*parse("mov %rax,0xb0(%rsp)")), 1);
  EXPECT_EQ(memOperandIndex(*parse("mov 0xb0(%rsp),%rax")), 0);
  EXPECT_EQ(memOperandIndex(*parse("mov %rax,%rbx")), -1);
  // lea computes an address, it does not access memory.
  EXPECT_EQ(memOperandIndex(*parse("lea 0x220(%rsp),%rax")), -1);
}

TEST(Properties, AccessWidths) {
  EXPECT_EQ(accessWidth(*parse("movb $0x0,0xc0(%rsp)")), Width::B1);
  EXPECT_EQ(accessWidth(*parse("movw $0x10,0x8(%rsp)")), Width::B2);
  EXPECT_EQ(accessWidth(*parse("movl $0x100,0xb8(%rsp)")), Width::B4);
  EXPECT_EQ(accessWidth(*parse("movq $0x0,0xa8(%rsp)")), Width::B8);
  EXPECT_EQ(accessWidth(*parse("movss 0x8(%rsp),%xmm0")), Width::B4);
  EXPECT_EQ(accessWidth(*parse("movsd 0x8(%rsp),%xmm0")), Width::B8);
  EXPECT_EQ(accessWidth(*parse("fldt 0x40(%rsp)")), Width::B10);
  EXPECT_EQ(accessWidth(*parse("movzbl 0x8(%rsp),%eax")), Width::B1);
  EXPECT_EQ(accessWidth(*parse("movswl 0x8(%rsp),%eax")), Width::B2);
  EXPECT_EQ(accessWidth(*parse("movslq 0x8(%rsp),%rax")), Width::B4);
  // Falls back to register width.
  EXPECT_EQ(accessWidth(*parse("mov %eax,0x8(%rsp)")), Width::B4);
  EXPECT_EQ(accessWidth(*parse("mov %rax,0x8(%rsp)")), Width::B8);
}

}  // namespace
}  // namespace cati::asmx
