// Shared micro-model fixture for test_parallel and test_golden: a tiny
// corpus + engine configuration that trains in seconds yet exercises the
// whole pipeline (synth -> corpus -> word2vec -> six CNN stages).
//
// The trained engine is cached on disk under ./cati_test_cache/ so the two
// suites (which ctest may schedule concurrently) do not both pay for
// training. Both register with RESOURCE_LOCK micro_model_cache in
// tests/CMakeLists.txt, so cache reads and the atomic temp+rename write
// never race. A corrupt or stale cache entry is never trusted: load errors
// fall back to retraining.
#pragma once

#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cati/engine.h"
#include "common/parallel.h"
#include "corpus/corpus.h"
#include "synth/synth.h"

namespace cati::testsupport {

/// Bump whenever generator output or training numerics change; old cache
/// entries are keyed by rev and simply ignored afterwards.
inline constexpr int kMicroRev = 1;
inline constexpr uint64_t kMicroSeed = 0xCA71;

inline EngineConfig microConfig() {
  EngineConfig cfg;
  cfg.window = 4;
  cfg.w2v.dim = 8;
  cfg.w2v.epochs = 1;
  cfg.conv1 = 4;
  cfg.conv2 = 8;
  cfg.fcHidden = 16;
  cfg.epochs = 1;
  cfg.maxTrainPerStage = 400;
  cfg.seed = kMicroSeed;
  return cfg;
}

inline std::vector<synth::Binary> microBinaries(
    par::ThreadPool* pool = nullptr) {
  return synth::generateCorpus(2, 6, synth::Dialect::Gcc, kMicroSeed, pool);
}

inline corpus::Dataset microDataset(par::ThreadPool* pool = nullptr) {
  return corpus::extractAll(microBinaries(pool), microConfig().window,
                            /*groundTruth=*/true, pool);
}

inline std::string serializeEngine(const Engine& e) {
  std::ostringstream os;
  e.save(os);
  return std::move(os).str();
}

/// Trains the micro engine from scratch at the given job count and returns
/// the serialized model bytes. The determinism contract (DESIGN.md §7) says
/// the result is the same string for every `jobs` value.
inline std::string trainMicroEngineBytes(int jobs) {
  par::ThreadPool pool(jobs);
  const corpus::Dataset ds = microDataset(&pool);
  Engine e(microConfig());
  e.train(ds, &pool);
  return serializeEngine(e);
}

inline std::filesystem::path microCachePath() {
  return std::filesystem::path("cati_test_cache") /
         ("micro_engine_r" + std::to_string(kMicroRev) + ".bin");
}

/// Atomic publish: a concurrent reader either sees the old file or the
/// complete new one, never a half-written model.
inline void writeMicroCache(const std::string& bytes) {
  const std::filesystem::path p = microCachePath();
  std::filesystem::create_directories(p.parent_path());
  const std::filesystem::path tmp = p.string() + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  std::filesystem::rename(tmp, p);
}

/// Loads the cached micro engine, retraining (and repopulating the cache)
/// when it is missing or fails the model file's CRC.
inline Engine cachedMicroEngine() {
  const std::filesystem::path p = microCachePath();
  if (std::filesystem::exists(p)) {
    try {
      return Engine::loadFile(p);
    } catch (const std::exception&) {
      // Corrupt/stale cache entry: fall through and retrain.
    }
  }
  const std::string bytes = trainMicroEngineBytes(par::resolveJobs());
  writeMicroCache(bytes);
  std::istringstream is(bytes);
  return Engine::load(is);
}

}  // namespace cati::testsupport
