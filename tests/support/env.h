// Environment-driven test scaling, shared by the fuzz and stress suites.
//
// CATI_FUZZ_ITERS names a TOTAL iteration budget (default kIterBudget, the
// historical sum of the fuzz suite's per-case defaults). Each scaled case
// calls scaledIters(itsDefault) and receives its proportional share, so one
// knob scales every suite consistently: CI's sanitizer leg can shrink runs
// (CATI_FUZZ_ITERS=500) and a nightly soak can raise them without touching
// any test. Unset or non-positive values mean "use the defaults".
#pragma once

#include <cstdlib>

namespace cati::testsupport {

/// The budget the per-case defaults add up to; the denominator of the
/// scaling ratio.
inline constexpr long kIterBudget = 10500;

/// `dflt` scaled by CATI_FUZZ_ITERS / kIterBudget (never below 1).
inline int scaledIters(int dflt) {
  if (const char* env = std::getenv("CATI_FUZZ_ITERS")) {
    const long total = std::strtol(env, nullptr, 10);
    if (total > 0) {
      return static_cast<int>(static_cast<double>(dflt) *
                              (static_cast<double>(total) /
                               static_cast<double>(kIterBudget))) +
             1;
    }
  }
  return dflt;
}

}  // namespace cati::testsupport
