// Golden-file helpers shared by test_golden and test_serve: compare rendered
// text against a checked-in file under tests/golden/, or rewrite the file
// when CATI_UPDATE_GOLDEN is set (the tests/golden/update.sh path).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#ifndef CATI_GOLDEN_DIR
#define CATI_GOLDEN_DIR "tests/golden"
#endif

namespace cati::testsupport {

inline uint64_t fnv1a(const std::string& bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Compares `actual` against the golden file, or rewrites the file when
/// CATI_UPDATE_GOLDEN is set (the update.sh path).
inline void compareOrUpdate(const std::string& name,
                            const std::string& actual) {
  const std::filesystem::path p = std::filesystem::path(CATI_GOLDEN_DIR) / name;
  const char* update = std::getenv("CATI_UPDATE_GOLDEN");
  if (update != nullptr && std::string(update) != "0") {
    std::filesystem::create_directories(p.parent_path());
    std::ofstream os(p, std::ios::binary);
    os << actual;
    ASSERT_TRUE(os.good()) << "failed to write " << p;
    std::fprintf(stderr, "[golden] updated %s\n", p.string().c_str());
    return;
  }
  std::ifstream is(p, std::ios::binary);
  ASSERT_TRUE(is.good())
      << "missing golden file " << p
      << " — generate it with tests/golden/update.sh BUILD_DIR";
  std::ostringstream ss;
  ss << is.rdbuf();
  EXPECT_EQ(ss.str(), actual)
      << "golden mismatch for " << name
      << ". If the change is intentional, regenerate with "
         "tests/golden/update.sh and review the diff.";
}

}  // namespace cati::testsupport
