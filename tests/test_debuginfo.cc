// Tests for the DWARF-like debug-info model: typedef resolution, the 19-type
// classification, encode/decode round-trips and stripping.
#include "debuginfo/debuginfo.h"

#include <gtest/gtest.h>

#include <sstream>

namespace cati::debuginfo {
namespace {

TEST(Classify, AllLabelsRoundTripThroughMakeTypeFor) {
  Module m;
  for (const TypeLabel t : allTypes()) {
    const int32_t idx = makeTypeFor(m, t);
    const auto cls = classify(m, idx);
    ASSERT_TRUE(cls.has_value()) << typeName(t);
    EXPECT_EQ(*cls, t) << typeName(t);
  }
}

TEST(Classify, TypedefChainsResolve) {
  Module m;
  const int32_t base = makeTypeFor(m, TypeLabel::UInt);
  // size_t -> __uint32_t -> unsigned int (a three-deep chain).
  TypeDie t1;
  t1.kind = TypeKind::Typedef;
  t1.name = "__uint32_t";
  t1.refType = base;
  const int32_t mid = m.addType(t1);
  TypeDie t2;
  t2.kind = TypeKind::Typedef;
  t2.name = "myuint";
  t2.refType = mid;
  const int32_t top = m.addType(t2);
  EXPECT_EQ(resolveTypedefs(m, top), base);
  EXPECT_EQ(classify(m, top), TypeLabel::UInt);
}

TEST(Classify, TypedefCycleThrows) {
  Module m;
  TypeDie a;
  a.kind = TypeKind::Typedef;
  a.refType = 1;
  m.addType(a);
  TypeDie b;
  b.kind = TypeKind::Typedef;
  b.refType = 0;
  m.addType(b);
  EXPECT_THROW(resolveTypedefs(m, 0), std::runtime_error);
}

TEST(Classify, OutOfRangeIndexThrows) {
  Module m;
  makeTypeFor(m, TypeLabel::Int);
  EXPECT_THROW(classify(m, 99), std::runtime_error);
  EXPECT_THROW(classify(m, -1), std::runtime_error);
}

TEST(Classify, ArraysClassifyAsElementType) {
  Module m;
  const int32_t charTy = makeTypeFor(m, TypeLabel::Char);
  TypeDie arr;
  arr.kind = TypeKind::Array;
  arr.refType = charTy;
  arr.arrayCount = 64;
  arr.byteSize = 64;
  const int32_t arrTy = m.addType(arr);
  EXPECT_EQ(classify(m, arrTy), TypeLabel::Char);  // paper Fig. 2: char buf

  const int32_t structTy = makeTypeFor(m, TypeLabel::Struct);
  TypeDie sArr;
  sArr.kind = TypeKind::Array;
  sArr.refType = structTy;
  sArr.arrayCount = 8;
  const int32_t sArrTy = m.addType(sArr);
  EXPECT_EQ(classify(m, sArrTy), TypeLabel::Struct);  // attr_pair[8] -> struct
}

TEST(Classify, PointerPointeeKinds) {
  Module m;
  // Pointer to typedef'd struct is still struct*.
  const int32_t structTy = makeTypeFor(m, TypeLabel::Struct);
  TypeDie td;
  td.kind = TypeKind::Typedef;
  td.name = "node_t";
  td.refType = structTy;
  const int32_t alias = m.addType(td);
  TypeDie ptr;
  ptr.kind = TypeKind::Pointer;
  ptr.byteSize = 8;
  ptr.refType = alias;
  EXPECT_EQ(classify(m, m.addType(ptr)), TypeLabel::StructPtr);

  // Pointer to pointer folds into arith*.
  TypeDie pp;
  pp.kind = TypeKind::Pointer;
  pp.byteSize = 8;
  pp.refType = makeTypeFor(m, TypeLabel::ArithPtr);
  EXPECT_EQ(classify(m, m.addType(pp)), TypeLabel::ArithPtr);
}

TEST(Classify, LongVsLongLongByName) {
  Module m;
  TypeDie ll;
  ll.kind = TypeKind::Base;
  ll.name = "long long int";
  ll.byteSize = 8;
  ll.isSigned = true;
  EXPECT_EQ(classify(m, m.addType(ll)), TypeLabel::LongLongInt);
  TypeDie l;
  l.kind = TypeKind::Base;
  l.name = "long int";
  l.byteSize = 8;
  l.isSigned = true;
  EXPECT_EQ(classify(m, m.addType(l)), TypeLabel::LongInt);
}

Module sampleModule() {
  Module m;
  m.producer = "synthcc (gcc) -O2";
  const int32_t intTy = makeTypeFor(m, TypeLabel::Int);
  const int32_t ptrTy = makeTypeFor(m, TypeLabel::StructPtr);
  FunctionDie f;
  f.name = "foo";
  f.lowPc = 0;
  f.highPc = 42;
  f.variables.push_back({"x", intTy, false, -0x14, asmx::Reg::None});
  f.variables.push_back({"p", ptrTy, false, 0x20, asmx::Reg::None});
  f.variables.push_back({"r", intTy, true, 0, asmx::Reg::R12});
  m.functions.push_back(std::move(f));
  return m;
}

TEST(Serialize, EncodeDecodeIdentity) {
  const Module m = sampleModule();
  std::stringstream ss;
  encode(m, ss);
  const Module back = decode(ss);
  EXPECT_EQ(back.producer, m.producer);
  ASSERT_EQ(back.types.size(), m.types.size());
  for (size_t i = 0; i < m.types.size(); ++i) {
    EXPECT_EQ(back.types[i].kind, m.types[i].kind);
    EXPECT_EQ(back.types[i].name, m.types[i].name);
    EXPECT_EQ(back.types[i].byteSize, m.types[i].byteSize);
    EXPECT_EQ(back.types[i].refType, m.types[i].refType);
    EXPECT_EQ(back.types[i].members.size(), m.types[i].members.size());
  }
  ASSERT_EQ(back.functions.size(), 1U);
  const FunctionDie& f = back.functions[0];
  EXPECT_EQ(f.name, "foo");
  ASSERT_EQ(f.variables.size(), 3U);
  EXPECT_EQ(f.variables[0].frameOffset, -0x14);
  EXPECT_TRUE(f.variables[2].inRegister);
  EXPECT_EQ(f.variables[2].reg, asmx::Reg::R12);
}

TEST(Serialize, TruncatedInputThrows) {
  const Module m = sampleModule();
  std::stringstream ss;
  encode(m, ss);
  std::string bytes = ss.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream half(bytes);
  EXPECT_THROW(decode(half), std::runtime_error);
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream ss;
  ss << "not a debuginfo file at all, padding padding padding";
  EXPECT_THROW(decode(ss), std::runtime_error);
}

TEST(Strip, RemovesSymbolsKeepsBoundaries) {
  const Module m = sampleModule();
  const Module s = stripped(m);
  EXPECT_TRUE(s.producer.empty());
  EXPECT_TRUE(s.types.empty());
  ASSERT_EQ(s.functions.size(), 1U);
  EXPECT_TRUE(s.functions[0].name.empty());
  EXPECT_TRUE(s.functions[0].variables.empty());
  EXPECT_EQ(s.functions[0].lowPc, 0U);
  EXPECT_EQ(s.functions[0].highPc, 42U);
}

TEST(MakeTypeFor, BaseTypesAreDeduplicated) {
  Module m;
  const int32_t a = makeTypeFor(m, TypeLabel::Int);
  const int32_t b = makeTypeFor(m, TypeLabel::Int);
  EXPECT_EQ(a, b);
  // Aggregates are fresh each time (distinct struct definitions).
  const int32_t s1 = makeTypeFor(m, TypeLabel::Struct);
  const int32_t s2 = makeTypeFor(m, TypeLabel::Struct);
  EXPECT_NE(s1, s2);
}

}  // namespace
}  // namespace cati::debuginfo
