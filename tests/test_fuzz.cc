// Seeded mutation-fuzz harness for the hostile-input contract: no byte
// sequence may crash the loader -> decoder -> recovery -> engine path.
// Synth-generated images are mutated (bit flips, truncations, splices,
// garbage blocks) at two levels — the serialized container and the
// in-memory structure — and the full pipeline must return diagnostics,
// never throw, never UB. Run under -DCATI_SANITIZE=ON in CI so "never UB"
// is checked by ASan+UBSan, not just by not-crashing.
//
// Self-contained (common/rng.h, no libFuzzer). Deterministic: every
// mutation derives from fixed seeds. CATI_FUZZ_ITERS scales the iteration
// count (default 10500 across the three tests).
#include <cstdlib>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "asmx/encode.h"
#include "cati/engine.h"
#include "common/rng.h"
#include "corpus/corpus.h"
#include "loader/image.h"
#include "support/env.h"
#include "synth/synth.h"

namespace cati {
namespace {

using testsupport::scaledIters;

std::string serializeImage(const loader::Image& img) {
  std::ostringstream os;
  loader::write(img, os);
  return std::move(os).str();
}

/// One random byte-level corruption: flip bits, truncate, overwrite a
/// block with garbage, splice a block from elsewhere in the file, or
/// extend with random tail bytes.
std::string mutateBytes(const std::string& base, Rng& rng) {
  std::string m = base;
  switch (rng.uniformInt(0, 4)) {
    case 0: {  // flip 1-8 bits
      const int flips = static_cast<int>(rng.uniformInt(1, 8));
      for (int i = 0; i < flips && !m.empty(); ++i) {
        const auto pos = static_cast<size_t>(
            rng.uniformInt(0, static_cast<int64_t>(m.size()) - 1));
        m[pos] = static_cast<char>(m[pos] ^ (1 << rng.uniformInt(0, 7)));
      }
      break;
    }
    case 1:  // truncate
      m.resize(static_cast<size_t>(
          rng.uniformInt(0, static_cast<int64_t>(m.size()))));
      break;
    case 2: {  // garbage block
      if (m.empty()) break;
      const auto pos = static_cast<size_t>(
          rng.uniformInt(0, static_cast<int64_t>(m.size()) - 1));
      const auto len = static_cast<size_t>(rng.uniformInt(1, 64));
      for (size_t i = pos; i < m.size() && i < pos + len; ++i) {
        m[i] = static_cast<char>(rng.uniformInt(0, 255));
      }
      break;
    }
    case 3: {  // splice: copy a block over another offset
      if (m.size() < 2) break;
      const auto n = static_cast<int64_t>(m.size());
      const auto src = static_cast<size_t>(rng.uniformInt(0, n - 1));
      const auto dst = static_cast<size_t>(rng.uniformInt(0, n - 1));
      const auto len = static_cast<size_t>(rng.uniformInt(1, 128));
      for (size_t i = 0; i < len && src + i < m.size() && dst + i < m.size();
           ++i) {
        m[dst + i] = m[src + i];
      }
      break;
    }
    default: {  // extend with a random tail
      const auto len = static_cast<size_t>(rng.uniformInt(1, 256));
      for (size_t i = 0; i < len; ++i) {
        m.push_back(static_cast<char>(rng.uniformInt(0, 255)));
      }
      break;
    }
  }
  return m;
}

class FuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Two donor images: one stripped gcc, one clang with debug info.
    loader::Image a = loader::buildImage(synth::generateBinary(
        synth::defaultProfile("fz", 0x77, 5), synth::Dialect::Gcc, 2, 11));
    loader::strip(a);
    const loader::Image b = loader::buildImage(synth::generateBinary(
        synth::defaultProfile("fz2", 0x78, 4), synth::Dialect::Clang, 1, 12));
    images_ = new std::vector<loader::Image>{std::move(a), b};
    bytes_ = new std::vector<std::string>{serializeImage((*images_)[0]),
                                          serializeImage((*images_)[1])};

    // Micro engine: the analyze stage only needs to *run* on garbage, so
    // the model is sized for speed, not accuracy.
    const auto bins = synth::generateCorpus(2, 5, synth::Dialect::Gcc, 31);
    EngineConfig cfg;
    cfg.window = 3;
    cfg.w2v.dim = 8;
    cfg.w2v.epochs = 1;
    cfg.conv1 = 4;
    cfg.conv2 = 4;
    cfg.fcHidden = 8;
    cfg.epochs = 1;
    cfg.maxTrainPerStage = 300;
    engine_ = new Engine(cfg);
    engine_->train(corpus::extractAll(bins, cfg.window));
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete images_;
    delete bytes_;
    engine_ = nullptr;
    images_ = nullptr;
    bytes_ = nullptr;
  }

  /// The contract under test: load, disassemble, recover and analyze must
  /// be total. Any exception escaping here fails the test with the seed.
  static void runPipeline(const std::string& bytes, uint64_t seed,
                          int maxAnalyzedFns) {
    DiagList diags;
    std::istringstream is(bytes);
    const auto img = loader::tryRead(is, diags);
    if (!img) {
      EXPECT_TRUE(hasErrors(diags)) << "seed " << seed;
      return;
    }
    analyzeImage(*img, seed, maxAnalyzedFns);
  }

  static void analyzeImage(const loader::Image& img, uint64_t seed,
                           int maxAnalyzedFns) {
    DiagList diags;
    int analyzed = 0;
    for (const loader::LoadedFunction& fn : loader::disassemble(img, diags)) {
      if (analyzed++ >= maxAnalyzedFns) break;
      const auto vars = engine_->analyzeFunction(fn.insns);
      for (const AnalyzedVariable& av : vars) {
        EXPECT_GE(av.confidence, 0.0F) << "seed " << seed;
      }
    }
  }

  static std::vector<loader::Image>* images_;
  static std::vector<std::string>* bytes_;
  static Engine* engine_;
};

std::vector<loader::Image>* FuzzTest::images_ = nullptr;
std::vector<std::string>* FuzzTest::bytes_ = nullptr;
Engine* FuzzTest::engine_ = nullptr;

TEST_F(FuzzTest, MutatedContainerBytes) {
  const int iters = scaledIters(6000);
  Rng rng(0xF0220001);
  for (int i = 0; i < iters; ++i) {
    const std::string& base = (*bytes_)[static_cast<size_t>(i) %
                                        bytes_->size()];
    const std::string m = mutateBytes(base, rng);
    ASSERT_NO_FATAL_FAILURE(runPipeline(m, rng.next(), /*maxAnalyzedFns=*/2))
        << "iteration " << i;
  }
}

TEST_F(FuzzTest, MutatedImageStructure) {
  // Structural mutations that survive the container CRC (they happen after
  // parsing): garbage in .text, hostile boundaries, shifted baseAddr,
  // out-of-range symbols. This is the layer that exercises decoder resync
  // and recovery/engine totality on garbage instructions.
  const int iters = scaledIters(4000);
  Rng rng(0xF0220002);
  for (int i = 0; i < iters; ++i) {
    loader::Image img =
        (*images_)[static_cast<size_t>(i) % images_->size()];
    const int mutations = static_cast<int>(rng.uniformInt(1, 3));
    for (int k = 0; k < mutations; ++k) {
      switch (rng.uniformInt(0, 4)) {
        case 0: {  // corrupt a .text block
          if (img.text.empty()) break;
          const auto pos = static_cast<size_t>(rng.uniformInt(
              0, static_cast<int64_t>(img.text.size()) - 1));
          const auto len = static_cast<size_t>(rng.uniformInt(1, 96));
          for (size_t j = pos; j < img.text.size() && j < pos + len; ++j) {
            img.text[j] = static_cast<uint8_t>(rng.uniformInt(0, 255));
          }
          break;
        }
        case 1: {  // hostile boundary
          if (img.boundaries.empty()) break;
          auto& bd = img.boundaries[static_cast<size_t>(rng.uniformInt(
              0, static_cast<int64_t>(img.boundaries.size()) - 1))];
          bd.start = rng.next();
          bd.end = rng.chance(0.5) ? bd.start + rng.uniformInt(0, 4096)
                                   : rng.next();
          break;
        }
        case 2:  // shift the base so boundaries dangle
          img.baseAddr = rng.next();
          break;
        case 3: {  // truncate .text under the boundaries
          img.text.resize(static_cast<size_t>(rng.uniformInt(
              0, static_cast<int64_t>(img.text.size()))));
          break;
        }
        default: {  // out-of-range / aliased symbol
          if (img.symbols.empty()) break;
          auto& s = img.symbols[static_cast<size_t>(rng.uniformInt(
              0, static_cast<int64_t>(img.symbols.size()) - 1))];
          s.value = rng.next();
          break;
        }
      }
    }
    DiagList diags;
    loader::validate(img, diags);  // must be total too
    ASSERT_NO_FATAL_FAILURE(analyzeImage(img, rng.next(),
                                         /*maxAnalyzedFns=*/2))
        << "iteration " << i;
  }
}

TEST_F(FuzzTest, RandomBytesNeverCrash) {
  const int iters = scaledIters(500);
  Rng rng(0xF0220003);
  for (int i = 0; i < iters; ++i) {
    std::string buf(static_cast<size_t>(rng.uniformInt(0, 4096)), '\0');
    for (char& c : buf) c = static_cast<char>(rng.uniformInt(0, 255));
    ASSERT_NO_FATAL_FAILURE(runPipeline(buf, rng.next(), 2))
        << "iteration " << i;
  }
}

TEST_F(FuzzTest, ParallelRecoveringDisassembleMatchesSerial) {
  // decodeAllRecover under jobs>1: the pooled overload must produce the
  // exact function list AND diagnostic sequence of the serial walk, even on
  // hostile images where some boundaries error and others quarantine bytes
  // (the merge is keyed on boundary-table order, not completion order).
  const int iters = scaledIters(300);
  Rng rng(0xF0220005);
  par::ThreadPool pool(3);
  for (int i = 0; i < iters; ++i) {
    loader::Image img = (*images_)[static_cast<size_t>(i) % images_->size()];
    // A light structural mutation mix: garbage .text block + one hostile
    // boundary, so runs hit both diagnostic paths.
    if (!img.text.empty()) {
      const auto pos = static_cast<size_t>(
          rng.uniformInt(0, static_cast<int64_t>(img.text.size()) - 1));
      const auto len = static_cast<size_t>(rng.uniformInt(1, 96));
      for (size_t j = pos; j < img.text.size() && j < pos + len; ++j) {
        img.text[j] = static_cast<uint8_t>(rng.uniformInt(0, 255));
      }
    }
    if (!img.boundaries.empty() && rng.chance(0.5)) {
      auto& bd = img.boundaries[static_cast<size_t>(rng.uniformInt(
          0, static_cast<int64_t>(img.boundaries.size()) - 1))];
      bd.start = rng.next();
      bd.end = rng.chance(0.5) ? bd.start + rng.uniformInt(0, 4096)
                               : rng.next();
    }

    DiagList serialDiags;
    DiagList poolDiags;
    const auto serial = loader::disassemble(img, serialDiags);
    const auto pooled = loader::disassemble(img, poolDiags, pool);

    ASSERT_EQ(serial.size(), pooled.size()) << "iteration " << i;
    for (size_t f = 0; f < serial.size(); ++f) {
      EXPECT_EQ(serial[f].name, pooled[f].name) << "iteration " << i;
      EXPECT_EQ(serial[f].addr, pooled[f].addr) << "iteration " << i;
      EXPECT_EQ(serial[f].insns.size(), pooled[f].insns.size())
          << "iteration " << i;
    }
    ASSERT_EQ(serialDiags.size(), poolDiags.size()) << "iteration " << i;
    for (size_t d = 0; d < serialDiags.size(); ++d) {
      EXPECT_EQ(toString(serialDiags[d]), toString(poolDiags[d]))
          << "iteration " << i << " diag " << d;
    }
  }
}

TEST_F(FuzzTest, DecoderResyncIsTotalOnRandomCode) {
  // decodeAllRecover directly on random byte soup: must account for every
  // byte and never throw.
  Rng rng(0xF0220004);
  for (int i = 0; i < 200; ++i) {
    std::vector<uint8_t> code(static_cast<size_t>(rng.uniformInt(0, 512)));
    for (auto& b : code) b = static_cast<uint8_t>(rng.uniformInt(0, 255));
    DiagList diags;
    const auto insns = asmx::decodeAllRecover(code, 0x401000, &diags);
    // Every instruction consumes >= 1 byte, and empty input decodes to
    // nothing; quarantine runs must only be reported when .byte was
    // emitted.
    EXPECT_LE(insns.size(), code.size()) << "iteration " << i;
    bool sawByte = false;
    for (const auto& ins : insns) sawByte |= asmx::isQuarantinedByte(ins);
    EXPECT_EQ(diags.empty(), !sawByte) << "iteration " << i;
  }
}

}  // namespace
}  // namespace cati
