// Tests for variable recovery: hand-written listings with known answers,
// lea tracking, member coalescing, and aggregate accuracy on generated
// binaries (the paper's "~90% recovery" slot).
#include "dataflow/recovery.h"

#include <gtest/gtest.h>

#include "asmx/instruction.h"
#include "synth/synth.h"

namespace cati::dataflow {
namespace {

std::vector<asmx::Instruction> listing(const char* text) {
  return asmx::parseListing(text);
}

TEST(Recovery, FindsRspSlots) {
  const auto insns = listing(
      "sub $0x20,%rsp\n"
      "movl $0x5,0x8(%rsp)\n"
      "mov 0x8(%rsp),%eax\n"
      "movq $0x0,0x10(%rsp)\n"
      "add $0x20,%rsp\n"
      "ret\n");
  const RecoveryResult r = recoverVariables(insns);
  EXPECT_FALSE(r.rbpFrame);
  ASSERT_EQ(r.vars.size(), 2U);
  EXPECT_EQ(r.vars[0].offset, 0x8);
  EXPECT_EQ(r.vars[0].targetInsns, (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(r.vars[1].offset, 0x10);
}

TEST(Recovery, DetectsRbpFrame) {
  const auto insns = listing(
      "push %rbp\n"
      "mov %rsp,%rbp\n"
      "sub $0x20,%rsp\n"
      "movl $0x7,-0x14(%rbp)\n"
      "leave\n"
      "ret\n");
  const RecoveryResult r = recoverVariables(insns);
  EXPECT_TRUE(r.rbpFrame);
  ASSERT_EQ(r.vars.size(), 1U);
  EXPECT_EQ(r.vars[0].offset, -0x14);
}

TEST(Recovery, LeaTrackingAttributesDerefs) {
  const auto insns = listing(
      "sub $0x20,%rsp\n"
      "lea 0x8(%rsp),%rax\n"   // rax = &slot8
      "mov (%rax),%edx\n"      // deref -> slot8
      "mov %edx,(%rax)\n"      // deref -> slot8
      "mov $0x1,%eax\n"        // kills tracking
      "mov (%rax),%ecx\n"      // no longer attributed
      "ret\n");
  const RecoveryResult r = recoverVariables(insns);
  ASSERT_EQ(r.vars.size(), 1U);
  EXPECT_TRUE(r.vars[0].addressTaken);
  EXPECT_EQ(r.vars[0].targetInsns, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(Recovery, CallsKillAddressTracking) {
  const auto insns = listing(
      "sub $0x20,%rsp\n"
      "lea 0x8(%rsp),%rax\n"
      "callq 1234 <foo>\n"
      "mov (%rax),%edx\n"  // rax clobbered by the call: not attributed
      "ret\n");
  const RecoveryResult r = recoverVariables(insns);
  ASSERT_EQ(r.vars.size(), 1U);
  EXPECT_EQ(r.vars[0].targetInsns, (std::vector<uint32_t>{1}));
}

TEST(Recovery, MemberAccessesCoalesceIntoLeaBase) {
  const auto insns = listing(
      "sub $0x40,%rsp\n"
      "lea 0x10(%rsp),%rdi\n"   // &struct base
      "movl $0x1,0x10(%rsp)\n"  // member 0
      "movl $0x2,0x18(%rsp)\n"  // member +8
      "movb $0x0,0x20(%rsp)\n"  // member +16
      "ret\n");
  const RecoveryResult r = recoverVariables(insns);
  ASSERT_EQ(r.vars.size(), 1U);
  EXPECT_EQ(r.vars[0].offset, 0x10);
  EXPECT_EQ(r.vars[0].targetInsns.size(), 4U);
}

TEST(Recovery, DistantSlotsNotCoalesced) {
  const auto insns = listing(
      "sub $0x200,%rsp\n"
      "lea 0x10(%rsp),%rdi\n"
      "movl $0x1,0x10(%rsp)\n"
      "movl $0x2,0x100(%rsp)\n"  // 240 bytes away: separate variable
      "ret\n");
  const RecoveryResult r = recoverVariables(insns);
  ASSERT_EQ(r.vars.size(), 2U);
}

TEST(Recovery, ScaledFrameAccessIgnored) {
  // Indexed frame access (variable-length array walk) is not a slot access
  // the simple recovery claims; it must not crash or produce junk offsets.
  const auto insns = listing(
      "sub $0x40,%rsp\n"
      "mov 0x8(%rsp,%rcx,4),%eax\n"
      "ret\n");
  const RecoveryResult r = recoverVariables(insns);
  EXPECT_TRUE(r.vars.empty());
}

TEST(Recovery, EmptyFunction) {
  const RecoveryResult r = recoverVariables(listing("ret\n"));
  EXPECT_TRUE(r.vars.empty());
}

TEST(Recovery, DeterministicOutput) {
  const synth::Binary bin = synth::generateBinary(
      synth::defaultProfile("d", 0x21, 6), synth::Dialect::Gcc, 1, 17);
  for (const synth::FunctionCode& fn : bin.funcs) {
    const RecoveryResult a = recoverVariables(fn.insns);
    const RecoveryResult b = recoverVariables(fn.insns);
    ASSERT_EQ(a.vars.size(), b.vars.size());
    for (size_t i = 0; i < a.vars.size(); ++i) {
      EXPECT_EQ(a.vars[i].offset, b.vars[i].offset);
      EXPECT_EQ(a.vars[i].targetInsns, b.vars[i].targetInsns);
    }
  }
}

// Aggregate accuracy on generated binaries across dialects and opt levels —
// the substitute for the paper's "variable recovery achieves about 90%".
class RecoveryAccuracy
    : public ::testing::TestWithParam<std::tuple<synth::Dialect, int>> {};

TEST_P(RecoveryAccuracy, RecallAboveFloor) {
  const auto [dialect, opt] = GetParam();
  const synth::Binary bin = synth::generateBinary(
      synth::defaultProfile("acc", 0x33, 40), dialect, opt, 23);
  const RecoveryScore s = scoreBinary(bin);
  EXPECT_GT(s.trueVars, 100U);
  // Slot-level recall: the recovery finds the overwhelming majority of
  // ground-truth variables.
  EXPECT_GE(s.varRecall(), 0.80)
      << "dialect=" << static_cast<int>(dialect) << " O" << opt;
  EXPECT_GE(s.insnRecall(), 0.70);
}

INSTANTIATE_TEST_SUITE_P(
    DialectsAndOpts, RecoveryAccuracy,
    ::testing::Combine(::testing::Values(synth::Dialect::Gcc,
                                         synth::Dialect::Clang),
                       ::testing::Values(0, 1, 2, 3)));

}  // namespace
}  // namespace cati::dataflow
