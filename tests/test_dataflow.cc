// Tests for variable recovery: hand-written listings with known answers,
// lea tracking, member coalescing, and aggregate accuracy on generated
// binaries (the paper's "~90% recovery" slot).
#include "dataflow/recovery.h"

#include <gtest/gtest.h>

#include "asmx/instruction.h"
#include "dataflow/interproc.h"
#include "ir/ir.h"
#include "ir/passes.h"
#include "synth/synth.h"

namespace cati::dataflow {
namespace {

std::vector<asmx::Instruction> listing(const char* text) {
  return asmx::parseListing(text);
}

TEST(Recovery, FindsRspSlots) {
  const auto insns = listing(
      "sub $0x20,%rsp\n"
      "movl $0x5,0x8(%rsp)\n"
      "mov 0x8(%rsp),%eax\n"
      "movq $0x0,0x10(%rsp)\n"
      "add $0x20,%rsp\n"
      "ret\n");
  const RecoveryResult r = recoverVariables(insns);
  EXPECT_FALSE(r.rbpFrame);
  ASSERT_EQ(r.vars.size(), 2U);
  EXPECT_EQ(r.vars[0].offset, 0x8);
  EXPECT_EQ(r.vars[0].targetInsns, (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(r.vars[1].offset, 0x10);
}

TEST(Recovery, DetectsRbpFrame) {
  const auto insns = listing(
      "push %rbp\n"
      "mov %rsp,%rbp\n"
      "sub $0x20,%rsp\n"
      "movl $0x7,-0x14(%rbp)\n"
      "leave\n"
      "ret\n");
  const RecoveryResult r = recoverVariables(insns);
  EXPECT_TRUE(r.rbpFrame);
  ASSERT_EQ(r.vars.size(), 1U);
  EXPECT_EQ(r.vars[0].offset, -0x14);
}

TEST(Recovery, LeaTrackingAttributesDerefs) {
  const auto insns = listing(
      "sub $0x20,%rsp\n"
      "lea 0x8(%rsp),%rax\n"   // rax = &slot8
      "mov (%rax),%edx\n"      // deref -> slot8
      "mov %edx,(%rax)\n"      // deref -> slot8
      "mov $0x1,%eax\n"        // kills tracking
      "mov (%rax),%ecx\n"      // no longer attributed
      "ret\n");
  const RecoveryResult r = recoverVariables(insns);
  ASSERT_EQ(r.vars.size(), 1U);
  EXPECT_TRUE(r.vars[0].addressTaken);
  EXPECT_EQ(r.vars[0].targetInsns, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(Recovery, CallsKillAddressTracking) {
  const auto insns = listing(
      "sub $0x20,%rsp\n"
      "lea 0x8(%rsp),%rax\n"
      "callq 1234 <foo>\n"
      "mov (%rax),%edx\n"  // rax clobbered by the call: not attributed
      "ret\n");
  const RecoveryResult r = recoverVariables(insns);
  ASSERT_EQ(r.vars.size(), 1U);
  EXPECT_EQ(r.vars[0].targetInsns, (std::vector<uint32_t>{1}));
}

TEST(Recovery, MemberAccessesCoalesceIntoLeaBase) {
  const auto insns = listing(
      "sub $0x40,%rsp\n"
      "lea 0x10(%rsp),%rdi\n"   // &struct base
      "movl $0x1,0x10(%rsp)\n"  // member 0
      "movl $0x2,0x18(%rsp)\n"  // member +8
      "movb $0x0,0x20(%rsp)\n"  // member +16
      "ret\n");
  const RecoveryResult r = recoverVariables(insns);
  ASSERT_EQ(r.vars.size(), 1U);
  EXPECT_EQ(r.vars[0].offset, 0x10);
  EXPECT_EQ(r.vars[0].targetInsns.size(), 4U);
}

TEST(Recovery, DistantSlotsNotCoalesced) {
  const auto insns = listing(
      "sub $0x200,%rsp\n"
      "lea 0x10(%rsp),%rdi\n"
      "movl $0x1,0x10(%rsp)\n"
      "movl $0x2,0x100(%rsp)\n"  // 240 bytes away: separate variable
      "ret\n");
  const RecoveryResult r = recoverVariables(insns);
  ASSERT_EQ(r.vars.size(), 2U);
}

TEST(Recovery, ScaledFrameAccessAttributedToBase) {
  // Indexed frame access (array walk over a frame aggregate) is attributed
  // to the base slot and flagged as indexed instead of being dropped.
  const auto insns = listing(
      "sub $0x40,%rsp\n"
      "mov 0x8(%rsp,%rcx,4),%eax\n"
      "ret\n");
  const RecoveryResult r = recoverVariables(insns);
  ASSERT_EQ(r.vars.size(), 1U);
  EXPECT_EQ(r.vars[0].offset, 0x8);
  EXPECT_TRUE(r.vars[0].indexed);
  EXPECT_EQ(r.vars[0].targetInsns, (std::vector<uint32_t>{1}));
}

TEST(Recovery, PushDoesNotKillLeaTracking) {
  // Regression: the old pass treated `push %rcx` as defining rcx — and,
  // symmetrically, a push of the tracked register as defining it — which
  // killed address tracking across spills. A push only reads its operand.
  const auto insns = listing(
      "push %rbp\n"
      "mov %rsp,%rbp\n"
      "sub $0x20,%rsp\n"
      "lea -0x8(%rbp),%rax\n"
      "push %rcx\n"        // spill: must not disturb the rax fact
      "mov (%rax),%edx\n"  // still attributed to -0x8
      "pop %rcx\n"
      "leave\n"
      "ret\n");
  const RecoveryResult r = recoverVariables(insns);
  ASSERT_EQ(r.vars.size(), 1U);
  EXPECT_EQ(r.vars[0].offset, -0x8);
  EXPECT_EQ(r.vars[0].targetInsns, (std::vector<uint32_t>{3, 5}));
}

TEST(Recovery, FactsSurviveConditionalFallthrough) {
  // The lea fact crosses the block boundary the conditional jump creates:
  // the fallthrough edge carries it into the dereferencing block.
  const auto insns = listing(
      "sub $0x20,%rsp\n"
      "lea 0x8(%rsp),%rax\n"
      "je 9999\n"          // target outside the span: fallthrough only
      "mov (%rax),%edx\n"
      "ret\n");
  const RecoveryResult r = recoverVariables(insns);
  ASSERT_EQ(r.vars.size(), 1U);
  EXPECT_EQ(r.vars[0].targetInsns, (std::vector<uint32_t>{1, 3}));
}

TEST(Recovery, CalleeSavedTrackingSurvivesCalls) {
  // rbx is callee-saved: a call clobbers only the caller-saved set, so the
  // address fact survives and the post-call dereference is attributed.
  const auto insns = listing(
      "sub $0x20,%rsp\n"
      "lea 0x8(%rsp),%rbx\n"
      "callq 1234 <foo>\n"
      "mov (%rbx),%edx\n"
      "ret\n");
  const RecoveryResult r = recoverVariables(insns);
  ASSERT_EQ(r.vars.size(), 1U);
  EXPECT_EQ(r.vars[0].targetInsns, (std::vector<uint32_t>{1, 3}));
}

TEST(Recovery, MemcpyExtentBoundsCoalescing) {
  // memcpy of the aggregate's address with an immediate size spells out its
  // extent: slots inside it coalesce into the base, slots at or beyond it
  // stay separate (the 80-byte fallback would have absorbed both).
  const auto insns = listing(
      "sub $0x100,%rsp\n"
      "lea 0x10(%rsp),%rdi\n"
      "mov $0x10,%edx\n"
      "callq 4000 <memcpy>\n"
      "movl $0x1,0x18(%rsp)\n"  // +8: inside the 16-byte extent
      "movl $0x2,0x20(%rsp)\n"  // +16: at the extent boundary — separate
      "ret\n");
  const RecoveryResult r = recoverVariables(insns);
  ASSERT_EQ(r.vars.size(), 2U);
  EXPECT_EQ(r.vars[0].offset, 0x10);
  EXPECT_EQ(r.vars[0].targetInsns, (std::vector<uint32_t>{1, 4}));
  EXPECT_EQ(r.vars[1].offset, 0x20);
}

TEST(Interproc, CallSiteFactsReachCalleeParams) {
  // Caller passes &local in rdi and a 4-byte load in esi; the callee spills
  // both in its prologue. The binary-level pass must mark the rdi spill
  // slot as a pointer parameter and record the esi width.
  const auto callerInsns = listing(
      "push %rbp\n"
      "mov %rsp,%rbp\n"
      "sub $0x20,%rsp\n"
      "lea -0x18(%rbp),%rdi\n"
      "mov -0x4(%rbp),%esi\n"
      "callq 1100 <helper>\n"
      "leave\n"
      "ret\n");
  const auto calleeInsns = listing(
      "push %rbp\n"
      "mov %rsp,%rbp\n"
      "mov %rdi,-0x18(%rbp)\n"
      "mov %esi,-0x1c(%rbp)\n"
      "leave\n"
      "ret\n");

  ir::FunctionGraph callerG = ir::lower(callerInsns);
  ir::runBlockPasses(callerG);
  ir::FunctionGraph calleeG = ir::lower(calleeInsns);
  ir::runBlockPasses(calleeG);
  RecoveryResult callerRec = recoverVariables(callerG);
  RecoveryResult calleeRec = recoverVariables(calleeG);

  std::vector<FunctionView> fns(2);
  fns[0] = {"main", 0x1000, callerInsns, {}, &callerG, &callerRec};
  fns[1] = {"helper", 0x1100, calleeInsns, {}, &calleeG, &calleeRec};
  const InterprocStats stats = propagateCallFacts(fns);
  EXPECT_EQ(stats.callSites, 1U);
  EXPECT_EQ(stats.resolvedSites, 1U);
  EXPECT_EQ(stats.paramFacts, 2U);

  const RecoveredVariable* ptrVar = nullptr;
  const RecoveredVariable* widthVar = nullptr;
  for (const RecoveredVariable& v : calleeRec.vars) {
    if (v.offset == -0x18) ptrVar = &v;
    if (v.offset == -0x1c) widthVar = &v;
  }
  ASSERT_NE(ptrVar, nullptr);
  EXPECT_TRUE(ptrVar->paramPointer);
  EXPECT_EQ(ptrVar->paramWidth, 8);
  ASSERT_NE(widthVar, nullptr);
  EXPECT_FALSE(widthVar->paramPointer);
  EXPECT_EQ(widthVar->paramWidth, 4);
}

TEST(Recovery, EmptyFunction) {
  const RecoveryResult r = recoverVariables(listing("ret\n"));
  EXPECT_TRUE(r.vars.empty());
}

TEST(Recovery, DeterministicOutput) {
  const synth::Binary bin = synth::generateBinary(
      synth::defaultProfile("d", 0x21, 6), synth::Dialect::Gcc, 1, 17);
  for (const synth::FunctionCode& fn : bin.funcs) {
    const RecoveryResult a = recoverVariables(fn.insns);
    const RecoveryResult b = recoverVariables(fn.insns);
    ASSERT_EQ(a.vars.size(), b.vars.size());
    for (size_t i = 0; i < a.vars.size(); ++i) {
      EXPECT_EQ(a.vars[i].offset, b.vars[i].offset);
      EXPECT_EQ(a.vars[i].targetInsns, b.vars[i].targetInsns);
    }
  }
}

// Aggregate accuracy on generated binaries across dialects and opt levels —
// the substitute for the paper's "variable recovery achieves about 90%".
class RecoveryAccuracy
    : public ::testing::TestWithParam<std::tuple<synth::Dialect, int>> {};

TEST_P(RecoveryAccuracy, RecallAboveFloor) {
  const auto [dialect, opt] = GetParam();
  const synth::Binary bin = synth::generateBinary(
      synth::defaultProfile("acc", 0x33, 40), dialect, opt, 23);
  const RecoveryScore s = scoreBinary(bin);
  EXPECT_GT(s.trueVars, 100U);
  // Slot-level recall: the recovery finds the overwhelming majority of
  // ground-truth variables.
  EXPECT_GE(s.varRecall(), 0.80)
      << "dialect=" << static_cast<int>(dialect) << " O" << opt;
  EXPECT_GE(s.insnRecall(), 0.70);
}

INSTANTIATE_TEST_SUITE_P(
    DialectsAndOpts, RecoveryAccuracy,
    ::testing::Combine(::testing::Values(synth::Dialect::Gcc,
                                         synth::Dialect::Clang),
                       ::testing::Values(0, 1, 2, 3)));

}  // namespace
}  // namespace cati::dataflow
