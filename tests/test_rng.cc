// Tests for the deterministic RNG wrapper: reproducibility, ranges,
// weighted sampling and stream forking.
#include "common/rng.h"

#include <gtest/gtest.h>

#include <array>

namespace cati {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(7);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.uniformInt(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    sawLo |= v == 2;
    sawHi |= v == 5;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformRealHalfOpen) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(0.25, 0.75);
    ASSERT_GE(v, 0.25);
    ASSERT_LT(v, 0.75);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(11);
  const std::array<double, 3> w = {0.0, 9.0, 1.0};
  std::array<int, 3> hist{};
  for (int i = 0; i < 5000; ++i) {
    ++hist[rng.weightedIndex(w)];
  }
  EXPECT_EQ(hist[0], 0);          // zero weight never drawn
  EXPECT_GT(hist[1], hist[2] * 5);  // 9:1 ratio roughly holds
}

TEST(Rng, ChoicePicksFromItems) {
  Rng rng(13);
  const std::vector<int> items = {10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int v = rng.choice(items);
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ForkedStreamsDiverge) {
  Rng a(21);
  const uint64_t f1 = a.fork();
  const uint64_t f2 = a.fork();
  EXPECT_NE(f1, f2);
  Rng c1(f1);
  Rng c2(f2);
  EXPECT_NE(c1.next(), c2.next());
}

TEST(Rng, NormalIsCentred) {
  Rng rng(29);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.normal(2.0F, 1.0F);
  EXPECT_NEAR(sum / 20000.0, 2.0, 0.05);
}

}  // namespace
}  // namespace cati
