// Tests for the NN library: shape propagation, numeric gradient checks for
// every layer (the backprop correctness proof), softmax invariants, Adam
// convergence on a toy problem, and model serialization.
#include "nn/nn.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace cati::nn {
namespace {

TEST(Shapes, CnnPipeline) {
  Rng rng(1);
  Sequential net = makeCnn({96, 21}, 32, 64, 128, 5, 0.0F, rng);
  EXPECT_EQ(net.outShape(), (Shape{5, 1}));
}

TEST(Shapes, TinyWindowSkipsPooling) {
  Rng rng(1);
  // L=1 (window 0 ablation) must still build a valid net.
  Sequential net = makeCnn({96, 1}, 8, 8, 16, 3, 0.0F, rng);
  EXPECT_EQ(net.outShape(), (Shape{3, 1}));
  std::vector<float> x(96, 0.5F);
  const auto y = net.forward(x, false);
  EXPECT_EQ(y.size(), 3U);
}

TEST(Softmax, SumsToOneAndLossPositive) {
  std::vector<float> logits = {1.0F, -2.0F, 0.5F, 3.0F};
  std::vector<float> probs(4);
  const float loss = SoftmaxCE::forward(logits, 1, probs);
  float sum = 0.0F;
  for (const float p : probs) {
    EXPECT_GT(p, 0.0F);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0F, 1e-5F);
  EXPECT_GT(loss, 0.0F);
  // Large logits must not overflow.
  logits = {1000.0F, 999.0F, -1000.0F, 0.0F};
  SoftmaxCE::forward(logits, 0, probs);
  for (const float p : probs) EXPECT_TRUE(std::isfinite(p));
}

TEST(Softmax, BackwardIsProbsMinusOneHot) {
  std::vector<float> probs = {0.1F, 0.7F, 0.2F};
  std::vector<float> d(3);
  SoftmaxCE::backward(probs, 1, d);
  EXPECT_FLOAT_EQ(d[0], 0.1F);
  EXPECT_FLOAT_EQ(d[1], -0.3F);
  EXPECT_FLOAT_EQ(d[2], 0.2F);
}

// Gradient checks: analytic backprop vs central differences, per layer type.
struct GradCase {
  const char* name;
  Shape in;
  int conv1;
  int conv2;
  int hidden;
  int classes;
};

class GradCheck : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradCheck, AnalyticMatchesNumeric) {
  const GradCase& c = GetParam();
  Rng rng(42);
  Sequential net =
      makeCnn(c.in, c.conv1, c.conv2, c.hidden, c.classes, 0.0F, rng);
  std::vector<float> x(static_cast<size_t>(c.in.size()));
  for (float& v : x) v = rng.normal() * 0.5F;
  const double err = gradientCheck(net, x, c.classes - 1);
  EXPECT_LT(err, 6e-2) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, GradCheck,
    ::testing::Values(GradCase{"tiny", {6, 9}, 4, 4, 8, 2},
                      GradCase{"narrow", {12, 21}, 6, 8, 16, 5},
                      GradCase{"threeclass", {8, 11}, 4, 6, 12, 3},
                      GradCase{"nineclass", {10, 7}, 4, 4, 8, 9}));

TEST(GradCheckLayers, LinearOnly) {
  Rng rng(3);
  Sequential net({7, 1});
  net.add(std::make_unique<Linear>(7, 5, &rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Linear>(5, 3, &rng));
  std::vector<float> x(7);
  for (float& v : x) v = rng.normal();
  EXPECT_LT(gradientCheck(net, x, 0), 6e-2);
}

TEST(GradCheckLayers, GlobalMaxPoolPath) {
  Rng rng(4);
  Sequential net({5, 8});
  net.add(std::make_unique<Conv1d>(5, 6, 3, &rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<GlobalMaxPool>());
  net.add(std::make_unique<Linear>(6, 2, &rng));
  std::vector<float> x(40);
  for (float& v : x) v = rng.normal();
  EXPECT_LT(gradientCheck(net, x, 1), 6e-2);
}

TEST(Layers, ReluMasksNegatives) {
  ReLU r;
  LayerScratch s;
  std::vector<float> x = {-1.0F, 0.0F, 2.0F};
  std::vector<float> y(3);
  r.forward(x, y, 1, s, Phase::kTrain);
  EXPECT_EQ(y[0], 0.0F);
  EXPECT_EQ(y[1], 0.0F);
  EXPECT_EQ(y[2], 2.0F);
  std::vector<float> dy = {1.0F, 1.0F, 1.0F};
  std::vector<float> dx(3);
  r.backward(dy, dx, 1, s);
  EXPECT_EQ(dx[0], 0.0F);
  EXPECT_EQ(dx[2], 1.0F);
}

TEST(Layers, MaxPoolForwardBackward) {
  MaxPool1d p(2);
  p.setInShape({1, 6});
  LayerScratch s;
  std::vector<float> x = {1.0F, 3.0F, 2.0F, 2.0F, -1.0F, -5.0F};
  std::vector<float> y(3);
  p.forward(x, y, 1, s, Phase::kTrain);
  EXPECT_EQ(y[0], 3.0F);
  EXPECT_EQ(y[1], 2.0F);
  EXPECT_EQ(y[2], -1.0F);
  std::vector<float> dy = {1.0F, 1.0F, 1.0F};
  std::vector<float> dx(6);
  p.backward(dy, dx, 1, s);
  EXPECT_EQ(dx[1], 1.0F);
  EXPECT_EQ(dx[0], 0.0F);
  EXPECT_EQ(dx[4], 1.0F);
}

TEST(Layers, DropoutInferenceIsIdentity) {
  Dropout d(0.5F, 7);
  LayerScratch s;
  std::vector<float> x = {1.0F, 2.0F, 3.0F};
  std::vector<float> y(3);
  d.forward(x, y, 1, s, Phase::kInfer);
  EXPECT_EQ(y, x);
}

TEST(Layers, DropoutTrainZeroesSome) {
  Dropout d(0.5F, 7);
  LayerScratch s;
  std::vector<float> x(1000, 1.0F);
  std::vector<float> y(1000);
  d.forward(x, y, 1, s, Phase::kTrain);
  int zeros = 0;
  for (const float v : y) {
    if (v == 0.0F) ++zeros;
  }
  EXPECT_GT(zeros, 300);
  EXPECT_LT(zeros, 700);
}

TEST(Layers, InferSkipsBackwardCaches) {
  // Phase::kInfer is the shared-const fast path: it must not populate the
  // scratch caches a backward would need.
  ReLU r;
  LayerScratch s;
  std::vector<float> x = {-1.0F, 2.0F};
  std::vector<float> y(2);
  r.forward(x, y, 1, s, Phase::kInfer);
  EXPECT_TRUE(s.mask.empty());
  MaxPool1d p(2);
  p.setInShape({1, 2});
  std::vector<float> py(1);
  p.forward(x, py, 1, s, Phase::kInfer);
  EXPECT_TRUE(s.argmax.empty());
}

TEST(Adam, LearnsXorLikeSeparation) {
  // A small FC net must drive training loss near zero on a separable toy
  // problem — smoke test that optimizer + backprop learn at all.
  Rng rng(11);
  Sequential net({2, 1});
  net.add(std::make_unique<Linear>(2, 16, &rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Linear>(16, 2, &rng));
  Adam adam(net.params(), {.lr = 5e-2F});

  const float xs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const int ys[4] = {0, 1, 1, 0};
  std::vector<float> probs(2);
  std::vector<float> d(2);
  double lastLoss = 0.0;
  for (int it = 0; it < 400; ++it) {
    lastLoss = 0.0;
    for (int i = 0; i < 4; ++i) {
      const auto logits = net.forward({xs[i], 2}, true);
      lastLoss += SoftmaxCE::forward(logits, ys[i], probs);
      SoftmaxCE::backward(probs, ys[i], d);
      net.backward(d);
    }
    adam.step(0.25F);
  }
  EXPECT_LT(lastLoss / 4.0, 0.1);
}

TEST(Serialize, SequentialRoundTrip) {
  Rng rng(9);
  Sequential net = makeCnn({6, 9}, 4, 4, 8, 3, 0.3F, rng);
  std::vector<float> x(54);
  for (float& v : x) v = rng.normal();
  const auto y1 = net.forward(x, false);
  const std::vector<float> out1(y1.begin(), y1.end());

  std::stringstream ss;
  net.save(ss);
  Sequential back = Sequential::load(ss);
  EXPECT_EQ(back.outShape(), net.outShape());
  const auto y2 = back.forward(x, false);
  ASSERT_EQ(y2.size(), out1.size());
  for (size_t i = 0; i < out1.size(); ++i) EXPECT_FLOAT_EQ(y2[i], out1[i]);
}

TEST(Serialize, CorruptModelThrows) {
  std::stringstream ss("this is not a model");
  EXPECT_THROW(Sequential::load(ss), std::runtime_error);
}

TEST(Layers, SizeMismatchThrows) {
  Rng rng(2);
  Linear lin(4, 2, &rng);
  LayerScratch s;
  std::vector<float> x(3);
  std::vector<float> y(2);
  EXPECT_THROW(lin.forward(x, y, 1, s, Phase::kInfer), std::invalid_argument);
  std::vector<float> x8(8);
  std::vector<float> y4(4);
  EXPECT_THROW(lin.forward(x8, y4, 3, s, Phase::kInfer),
               std::invalid_argument);
}

// --- batch/per-sample differential: the §7 determinism contract at the nn
// layer. batch=B must reproduce batch=1 bit-for-bit: forward activations,
// accumulated gradients, and dropout draw order.

TEST(Batch, ForwardMatchesPerSampleBitExact) {
  Rng rng(21);
  Sequential net = makeCnn({6, 9}, 4, 4, 8, 3, 0.0F, rng);
  // 13 = one full conv batch lane (kBatchLane) plus a remainder, so this
  // pins the transposed lane kernel against the per-sample kernel.
  constexpr int kN = kBatchLane + 5;
  const auto inSize = static_cast<size_t>(net.inShape().size());
  const auto outSize = static_cast<size_t>(net.outShape().size());
  std::vector<float> xs(kN * inSize);
  for (float& v : xs) v = rng.normal();

  Scratch sb = net.makeScratch();
  const auto yb = net.forward(xs, kN, sb, Phase::kInfer);
  ASSERT_EQ(yb.size(), kN * outSize);

  Scratch s1 = net.makeScratch();
  for (int i = 0; i < kN; ++i) {
    const auto y1 = net.forward(
        std::span(xs).subspan(static_cast<size_t>(i) * inSize, inSize), 1, s1,
        Phase::kInfer);
    for (size_t j = 0; j < outSize; ++j) {
      EXPECT_EQ(yb[static_cast<size_t>(i) * outSize + j], y1[j])
          << "sample " << i << " logit " << j;
    }
  }
  // kEval (caching) must not change the numbers either.
  Scratch se = net.makeScratch();
  const auto ye = net.forward(xs, kN, se, Phase::kEval);
  for (size_t j = 0; j < yb.size(); ++j) EXPECT_EQ(yb[j], ye[j]);
}

TEST(Batch, BackwardGradsMatchPerSampleFold) {
  Rng rng(22);
  Sequential net = makeCnn({6, 9}, 4, 4, 8, 3, 0.0F, rng);
  constexpr int kN = 4;
  const auto inSize = static_cast<size_t>(net.inShape().size());
  const auto outSize = static_cast<size_t>(net.outShape().size());
  std::vector<float> xs(kN * inSize);
  std::vector<float> douts(kN * outSize);
  for (float& v : xs) v = rng.normal();
  for (float& v : douts) v = rng.normal();

  Scratch sb = net.makeScratch();
  net.forward(xs, kN, sb, Phase::kEval);
  net.backward(douts, kN, sb);
  std::vector<float> gb;
  sb.appendGrads(gb);

  // Per-sample fold on one scratch: gradients accumulate across backward
  // calls in sample order — the historical chunk loop.
  Scratch s1 = net.makeScratch();
  for (int i = 0; i < kN; ++i) {
    net.forward(std::span(xs).subspan(static_cast<size_t>(i) * inSize, inSize),
                1, s1, Phase::kEval);
    net.backward(
        std::span(douts).subspan(static_cast<size_t>(i) * outSize, outSize), 1,
        s1);
  }
  std::vector<float> g1;
  s1.appendGrads(g1);

  ASSERT_FALSE(gb.empty());
  ASSERT_EQ(gb.size(), g1.size());
  for (size_t j = 0; j < gb.size(); ++j) {
    EXPECT_EQ(gb[j], g1[j]) << "grad element " << j;
  }
}

TEST(Batch, DropoutDrawsMatchPerSampleOrder) {
  Rng rng(23);
  Sequential net = makeCnn({4, 5}, 4, 4, 8, 2, 0.5F, rng);
  constexpr int kN = 3;
  const auto inSize = static_cast<size_t>(net.inShape().size());
  const auto outSize = static_cast<size_t>(net.outShape().size());
  std::vector<float> xs(kN * inSize);
  for (float& v : xs) v = rng.normal();

  Scratch sb = net.makeScratch();
  sb.reseed(99);
  const auto yb = net.forward(xs, kN, sb, Phase::kTrain);
  const std::vector<float> batched(yb.begin(), yb.end());

  Scratch s1 = net.makeScratch();
  s1.reseed(99);
  for (int i = 0; i < kN; ++i) {
    const auto y1 = net.forward(
        std::span(xs).subspan(static_cast<size_t>(i) * inSize, inSize), 1, s1,
        Phase::kTrain);
    for (size_t j = 0; j < outSize; ++j) {
      EXPECT_EQ(batched[static_cast<size_t>(i) * outSize + j], y1[j])
          << "sample " << i << " logit " << j;
    }
  }
}

TEST(Batch, ScratchMismatchThrows) {
  Rng rng(24);
  Sequential a = makeCnn({6, 9}, 4, 4, 8, 3, 0.0F, rng);
  Sequential b({6, 9});  // different layer structure
  Scratch sb = b.makeScratch();
  std::vector<float> x(54);
  EXPECT_THROW(a.forward(x, 1, sb, Phase::kInfer), std::invalid_argument);
}

}  // namespace
}  // namespace cati::nn
