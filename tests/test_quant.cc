// The int8 quantization contract (DESIGN.md §11):
//
//   - quantize -> dequantize error is bounded by half a quantization step
//     per weight (symmetric per-output-channel scales);
//   - the CQNT container rejects corruption the same way every other
//     checksummed container does: bad magic, truncation, flipped bits in
//     metadata or heap are deterministic CorruptError, never a model that
//     predicts from garbage — while the mmap path's documented deal
//     (metadata verified, heap trusted to the filesystem) also holds;
//   - quantized inference is bit-identical across batch sizes and job
//     counts (per-sample activation scales, exact int32 accumulation);
//   - the accuracy cost vs fp32 on the seeded micro-model is at most
//     0.5 pp — the gate that makes --quant safe to ship.
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cati/engine.h"
#include "common/errors.h"
#include "common/rng.h"
#include "nn/kernels.h"
#include "nn/qnn.h"
#include "support/micro_model.h"

namespace cati {
namespace {

namespace stdfs = std::filesystem;

// --- weight round-trip -------------------------------------------------------

TEST(QuantWeights, RoundTripBoundedByHalfStep) {
  Rng rng(0x9047);
  for (const auto& [inF, outF, k] : {std::tuple{96, 32, 3},
                                     std::tuple{320, 128, 1},
                                     std::tuple{5, 3, 5}}) {
    std::vector<float> w(static_cast<size_t>(outF) * inF * k);
    for (auto& v : w) v = rng.normal(0.0F, 0.3F);
    std::vector<float> b(static_cast<size_t>(outF));
    for (auto& v : b) v = rng.normal();
    const nn::QWeights q = nn::quantizeWeights(w, b, inF, outF, k);

    ASSERT_EQ(q.w.size(), static_cast<size_t>(k) * nn::qBlockBytes(inF, outF));
    const int oPad = nn::kern::qOutPad(outF);
    const size_t blockBytes = nn::qBlockBytes(inF, outF);
    for (int o = 0; o < outF; ++o) {
      const float s = q.scale[static_cast<size_t>(o)];
      ASSERT_GT(s, 0.0F);
      for (int c = 0; c < inF; ++c) {
        for (int kk = 0; kk < k; ++kk) {
          const int g = c / nn::kern::kQGroup;
          const int j = c % nn::kern::kQGroup;
          const int8_t qv =
              q.w[static_cast<size_t>(kk) * blockBytes +
                  (static_cast<size_t>(g) * oPad + o) * nn::kern::kQGroup + j];
          const float orig =
              w[(static_cast<size_t>(o) * inF + c) * k + kk];
          // |w - q*s| <= s/2 unless the value clamped at ±127 (it cannot:
          // the scale is amax/127, so |w/s| <= 127 by construction).
          EXPECT_LE(std::fabs(orig - static_cast<float>(qv) * s),
                    s * 0.5F + 1e-7F)
              << "o=" << o << " c=" << c << " kk=" << kk;
        }
      }
    }
    // Row sums in the metadata must equal the stored int8 rows: the VNNI
    // kernel's bias correction depends on them and they are never
    // recomputed at load time.
    for (int kk = 0; kk < k; ++kk) {
      for (int o = 0; o < outF; ++o) {
        int32_t sum = 0;
        for (int c = 0; c < inF; ++c) {
          const int g = c / nn::kern::kQGroup;
          const int j = c % nn::kern::kQGroup;
          sum += q.w[static_cast<size_t>(kk) * blockBytes +
                     (static_cast<size_t>(g) * oPad + o) * nn::kern::kQGroup +
                     j];
        }
        EXPECT_EQ(sum, q.rowSum[static_cast<size_t>(kk) * oPad + o]);
      }
    }
  }
}

TEST(QuantWeights, AllZeroRowUsesUnitScale) {
  const std::vector<float> w(12, 0.0F);
  const std::vector<float> b(3, 0.5F);
  const nn::QWeights q = nn::quantizeWeights(w, b, 4, 3, 1);
  for (const float s : q.scale) EXPECT_EQ(s, 1.0F);
  for (const int8_t v : q.w) EXPECT_EQ(v, 0);
}

TEST(QuantLayers, InferenceOnly) {
  Rng rng(1);
  nn::Conv1d conv(3, 4, 3, &rng);
  nn::QConv1d qconv(conv);
  nn::LayerScratch s;
  std::vector<float> x(3 * 5), y(4 * 5);
  EXPECT_THROW(qconv.forward(x, y, 1, s, nn::Phase::kTrain), std::logic_error);
  EXPECT_THROW(qconv.forward(x, y, 1, s, nn::Phase::kEval), std::logic_error);
  EXPECT_NO_THROW(qconv.forward(x, y, 1, s, nn::Phase::kInfer));
  EXPECT_THROW(qconv.backward(y, x, 1, s), std::logic_error);
}

// --- engine-level: container, invariance, accuracy ---------------------------

class QuantEngineTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine_ = new Engine(testsupport::cachedMicroEngine());
    quant_ = new Engine(engine_->quantize());
    ds_ = new corpus::Dataset(testsupport::microDataset());
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete quant_;
    delete ds_;
    engine_ = nullptr;
    quant_ = nullptr;
    ds_ = nullptr;
  }

  static std::string quantBytes() {
    std::ostringstream os;
    quant_->save(os);
    return std::move(os).str();
  }

  /// Serialized per-stage probability bytes for the first `n` VUCs.
  static std::string probeBytes(Engine& e, size_t n, par::ThreadPool* pool,
                                int batch) {
    const std::span<const corpus::Vuc> vucs(ds_->vucs.data(),
                                            std::min(n, ds_->vucs.size()));
    const auto probs = e.predictVucs(vucs, pool, batch);
    std::string bytes;
    for (const auto& sp : probs) {
      for (const auto& stage : sp.probs) {
        bytes.append(reinterpret_cast<const char*>(stage.data()),
                     stage.size() * sizeof(float));
      }
    }
    return bytes;
  }

  static Engine* engine_;
  static Engine* quant_;
  static corpus::Dataset* ds_;
};

Engine* QuantEngineTest::engine_ = nullptr;
Engine* QuantEngineTest::quant_ = nullptr;
corpus::Dataset* QuantEngineTest::ds_ = nullptr;

TEST_F(QuantEngineTest, QuantizeGuards) {
  EXPECT_TRUE(quant_->quantized());
  EXPECT_FALSE(engine_->quantized());
  EXPECT_THROW(quant_->quantize(), std::logic_error);
  EXPECT_THROW(quant_->train(*ds_), std::logic_error);
  EXPECT_THROW(Engine{}.quantize(), std::logic_error);
}

TEST_F(QuantEngineTest, ContainerRoundTripsByteIdentically) {
  const std::string bytes = quantBytes();
  std::istringstream is(bytes);
  Engine loaded = Engine::load(is);
  EXPECT_TRUE(loaded.quantized());
  // Same predictions as the in-memory quantized engine...
  EXPECT_EQ(probeBytes(loaded, 32, nullptr, 8),
            probeBytes(*quant_, 32, nullptr, 8));
  // ...and re-saving reproduces the container bytes exactly.
  std::ostringstream os;
  loaded.save(os);
  EXPECT_EQ(std::move(os).str(), bytes);
}

TEST_F(QuantEngineTest, CorruptionIsRejectedDeterministically) {
  const std::string bytes = quantBytes();
  const auto loadFrom = [](std::string b) {
    std::istringstream is(std::move(b));
    return Engine::load(is);
  };
  // Bad magic.
  {
    std::string b = bytes;
    b[0] ^= 0x40;
    EXPECT_THROW(loadFrom(b), CorruptError);
  }
  // A flipped bit early in the metadata payload.
  {
    std::string b = bytes;
    b[60] ^= 0x01;
    EXPECT_THROW(loadFrom(b), CorruptError);
  }
  // A flipped bit in the weight heap (stream load verifies the heap CRC).
  {
    std::string b = bytes;
    b[b.size() - 40] ^= 0x01;
    EXPECT_THROW(loadFrom(b), CorruptError);
  }
  // Truncations: inside the metadata frame and inside the heap.
  for (const size_t keep : {size_t{3}, size_t{200}, bytes.size() / 2,
                            bytes.size() - 33}) {
    EXPECT_THROW(loadFrom(bytes.substr(0, keep)), CorruptError) << keep;
  }
}

TEST_F(QuantEngineTest, MmapLoadMatchesStreamLoadAndChecksMeta) {
  const stdfs::path dir = stdfs::temp_directory_path() / "cati_quant_mmap";
  stdfs::create_directories(dir);
  const stdfs::path file = dir / "model.q.bin";
  quant_->saveFile(file);

  Engine mapped = Engine::loadFile(file, Engine::LoadMode::kMap);
  EXPECT_TRUE(mapped.quantized());
  EXPECT_EQ(probeBytes(mapped, 32, nullptr, 8),
            probeBytes(*quant_, 32, nullptr, 8));

  const std::string bytes = quantBytes();
  // Truncated heap: caught by bounds checks even without a heap CRC pass.
  {
    std::ofstream os(dir / "trunc.bin", std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 33));
  }
  EXPECT_THROW(Engine::loadFile(dir / "trunc.bin", Engine::LoadMode::kMap),
               CorruptError);
  // Metadata corruption: caught by the frame CRC.
  {
    std::string b = bytes;
    b[60] ^= 0x01;
    std::ofstream os(dir / "meta.bin", std::ios::binary);
    os.write(b.data(), static_cast<std::streamsize>(b.size()));
  }
  EXPECT_THROW(Engine::loadFile(dir / "meta.bin", Engine::LoadMode::kMap),
               CorruptError);
  // The documented kMap deal: heap bytes are NOT re-checksummed (that is
  // what makes cold start O(pages touched)) — a heap flip loads fine.
  {
    std::string b = bytes;
    b[b.size() - 40] ^= 0x01;
    std::ofstream os(dir / "heap.bin", std::ios::binary);
    os.write(b.data(), static_cast<std::streamsize>(b.size()));
  }
  EXPECT_NO_THROW(Engine::loadFile(dir / "heap.bin", Engine::LoadMode::kMap));
  stdfs::remove_all(dir);
}

TEST_F(QuantEngineTest, PredictionsInvariantAcrossJobsAndBatch) {
  const std::string ref = probeBytes(*quant_, 64, nullptr, 1);
  for (const int jobs : {1, 2}) {
    par::ThreadPool pool(jobs);
    for (const int batch : {1, 8, 32}) {
      EXPECT_EQ(probeBytes(*quant_, 64, &pool, batch), ref)
          << "jobs=" << jobs << " batch=" << batch;
    }
  }
}

TEST_F(QuantEngineTest, AccuracyWithinHalfPointOfFp32) {
  // VUC-level leaf accuracy over every labeled micro-dataset VUC: the gate
  // the bench harness enforces, in ctest form.
  const std::span<const corpus::Vuc> vucs(ds_->vucs);
  const auto fp32Probs = engine_->predictVucs(vucs);
  const auto quantProbs = quant_->predictVucs(vucs);
  size_t labeled = 0, okFp = 0, okQ = 0;
  for (size_t i = 0; i < vucs.size(); ++i) {
    if (vucs[i].label == TypeLabel::kCount) continue;
    ++labeled;
    if (engine_->routeVuc(fp32Probs[i]) == vucs[i].label) ++okFp;
    if (quant_->routeVuc(quantProbs[i]) == vucs[i].label) ++okQ;
  }
  ASSERT_GT(labeled, 100U);
  const double accFp = static_cast<double>(okFp) / static_cast<double>(labeled);
  const double accQ = static_cast<double>(okQ) / static_cast<double>(labeled);
  EXPECT_LE(accFp - accQ, 0.005)
      << "fp32 " << accFp << " vs int8 " << accQ << " over " << labeled
      << " VUCs";
}

}  // namespace
}  // namespace cati
