// Tests for the embedding stack: vocabulary, skip-gram word2vec training
// properties (co-occurrence -> similarity), the BLANK pinning invariant,
// VUC encoding layout and serialization.
#include "embed/word2vec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "synth/synth.h"

namespace cati::embed {
namespace {

TEST(Vocab, ReservedTokens) {
  Vocab v;
  EXPECT_EQ(v.lookup("BLANK"), Vocab::kBlankId);
  EXPECT_EQ(v.lookup("UNK"), Vocab::kUnkId);
  EXPECT_EQ(v.lookup("never-seen"), Vocab::kUnkId);
}

TEST(Vocab, AddCountsOccurrences) {
  Vocab v;
  const int32_t a = v.add("mov");
  EXPECT_EQ(v.add("mov"), a);
  EXPECT_EQ(v.add("mov"), a);
  EXPECT_EQ(v.count(a), 3U);
  EXPECT_EQ(v.word(a), "mov");
  EXPECT_EQ(v.lookup("mov"), a);
}

TEST(Vocab, SaveLoadIdentity) {
  Vocab v;
  v.add("mov");
  v.add("mov");
  v.add("%rax");
  std::stringstream ss;
  v.save(ss);
  const Vocab back = Vocab::load(ss);
  EXPECT_EQ(back.size(), v.size());
  EXPECT_EQ(back.lookup("mov"), v.lookup("mov"));
  EXPECT_EQ(back.count(back.lookup("mov")), 2U);
}

TEST(Tokenize, SixtyThreeTokensPerVuc) {
  const synth::Binary bin = synth::generateBinary(
      synth::defaultProfile("e", 0x4, 4), synth::Dialect::Gcc, 2, 3);
  const corpus::Dataset ds = corpus::extractGroundTruth(bin, 10);
  const TokenizedCorpus tc = tokenize(ds);
  ASSERT_EQ(tc.sentences.size(), ds.vucs.size());
  for (const auto& s : tc.sentences) EXPECT_EQ(s.size(), 63U);
  EXPECT_GT(tc.vocab.size(), 10);
}

/// A tiny synthetic corpus where tokens "a" and "b" always co-occur and "z"
/// never appears near them: cosine(a,b) should exceed cosine(a,z).
TEST(Word2Vec, CooccurrenceDrivesSimilarity) {
  TokenizedCorpus tc;
  const int32_t a = tc.vocab.add("a");
  const int32_t b = tc.vocab.add("b");
  const int32_t z = tc.vocab.add("z");
  const int32_t w = tc.vocab.add("w");
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    if (i % 2 == 0) {
      tc.sentences.push_back({a, b, a, b, a, b});
      tc.vocab.add("a");
      tc.vocab.add("b");
    } else {
      tc.sentences.push_back({z, w, z, w, z, w});
      tc.vocab.add("z");
      tc.vocab.add("w");
    }
  }
  W2VConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 10;
  cfg.seed = 5;
  cfg.subsample = 1.0;  // no downsampling in this tiny test
  Word2Vec w2v;
  w2v.train(tc, cfg);
  EXPECT_GT(w2v.similarity(a, b), w2v.similarity(a, z) + 0.2);
}

TEST(Word2Vec, BlankPinnedToZero) {
  TokenizedCorpus tc;
  const int32_t a = tc.vocab.add("a");
  const int32_t b = tc.vocab.add("b");
  tc.sentences.assign(50, {a, b, a, b});
  W2VConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 2;
  Word2Vec w2v;
  w2v.train(tc, cfg);
  for (const float x : w2v.vec(Vocab::kBlankId)) EXPECT_EQ(x, 0.0F);
}

TEST(Word2Vec, VectorsAreFiniteAndBounded) {
  const synth::Binary bin = synth::generateBinary(
      synth::defaultProfile("e2", 0x8, 6), synth::Dialect::Gcc, 1, 9);
  const corpus::Dataset ds = corpus::extractGroundTruth(bin, 10);
  TokenizedCorpus tc = tokenize(ds);
  W2VConfig cfg;
  cfg.epochs = 1;
  Word2Vec w2v;
  w2v.train(tc, cfg);
  for (int32_t t = 0; t < w2v.vocabSize(); ++t) {
    float norm = 0.0F;
    for (const float x : w2v.vec(t)) {
      ASSERT_TRUE(std::isfinite(x));
      norm += x * x;
    }
    EXPECT_LT(std::sqrt(norm), 100.0F);
  }
}

TEST(Word2Vec, SaveLoadIdentity) {
  TokenizedCorpus tc;
  const int32_t a = tc.vocab.add("a");
  const int32_t b = tc.vocab.add("b");
  tc.sentences.assign(20, {a, b});
  W2VConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 1;
  Word2Vec w2v;
  w2v.train(tc, cfg);
  std::stringstream ss;
  w2v.save(ss);
  const Word2Vec back = Word2Vec::load(ss);
  ASSERT_EQ(back.dim(), w2v.dim());
  for (int32_t t = 0; t < w2v.vocabSize(); ++t) {
    const auto va = w2v.vec(t);
    const auto vb = back.vec(t);
    for (int d = 0; d < w2v.dim(); ++d) EXPECT_EQ(va[d], vb[d]);
  }
}

TEST(Encoder, LayoutAndOcclusion) {
  const synth::Binary bin = synth::generateBinary(
      synth::defaultProfile("e3", 0x2, 4), synth::Dialect::Gcc, 2, 5);
  const corpus::Dataset ds = corpus::extractGroundTruth(bin, 10);
  TokenizedCorpus tc = tokenize(ds);
  W2VConfig cfg;
  cfg.epochs = 1;
  Word2Vec w2v;
  w2v.train(tc, cfg);
  const VucEncoder enc(std::move(tc.vocab), std::move(w2v));

  const corpus::Vuc& v = ds.vucs[0];
  const size_t rows = v.window.size();
  const auto cols = static_cast<size_t>(enc.cols());
  std::vector<float> full(rows * cols);
  enc.encode(v, full);

  // Row r holds the concat of (mnem, op1, op2) embeddings of instruction r.
  const int32_t mnemId = enc.vocab().lookup(v.window[10].mnem);
  const auto mnemVec = enc.w2v().vec(mnemId);
  for (int d = 0; d < enc.w2v().dim(); ++d) {
    EXPECT_EQ(full[10 * cols + static_cast<size_t>(d)], mnemVec[d]);
  }

  // Occluding row k zeroes exactly that row.
  std::vector<float> occ(rows * cols);
  enc.encodeOccluded(v, 10, occ);
  for (size_t c = 0; c < cols; ++c) EXPECT_EQ(occ[10 * cols + c], 0.0F);
  for (size_t r = 0; r < rows; ++r) {
    if (r == 10) continue;
    for (size_t c = 0; c < cols; ++c) {
      EXPECT_EQ(occ[r * cols + c], full[r * cols + c]);
    }
  }
}

TEST(Encoder, RejectsWrongBufferSize) {
  Vocab v;
  Word2Vec w;
  TokenizedCorpus tc;
  tc.sentences.assign(4, {tc.vocab.add("a"), tc.vocab.add("b")});
  W2VConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 1;
  w.train(tc, cfg);
  const VucEncoder enc(std::move(tc.vocab), std::move(w));
  corpus::Vuc vuc;
  vuc.window.resize(21);
  vuc.posLabel.assign(21, -1);
  std::vector<float> tooSmall(10);
  EXPECT_THROW(enc.encode(vuc, tooSmall), std::invalid_argument);
}

}  // namespace
}  // namespace cati::embed
