#!/bin/sh
# Regenerates the golden regression files from the current build.
#
#   tests/golden/update.sh [BUILD_DIR]      (default: build)
#
# Runs test_golden, test_obs and test_serve (the serve-report golden) with
# CATI_UPDATE_GOLDEN=1, which rewrites the files in this directory instead
# of comparing against them. Review the resulting diff before committing:
# every changed line is an intentional (or caught!) numeric drift of the
# seeded pipeline.
set -eu
BUILD="${1:-build}"
for bin in test_golden test_obs test_serve; do
  if [ ! -x "$BUILD/tests/$bin" ]; then
    echo "update.sh: $BUILD/tests/$bin not built (cmake --build $BUILD)" >&2
    exit 1
  fi
done
CATI_UPDATE_GOLDEN=1 "$BUILD/tests/test_golden"
CATI_UPDATE_GOLDEN=1 "$BUILD/tests/test_obs"
CATI_UPDATE_GOLDEN=1 "$BUILD/tests/test_serve" --gtest_filter='*Golden*'
