#!/bin/sh
# Regenerates the golden regression files from the current build.
#
#   tests/golden/update.sh [BUILD_DIR]      (default: build)
#
# Runs test_golden with CATI_UPDATE_GOLDEN=1, which rewrites the files in
# this directory instead of comparing against them. Review the resulting
# diff before committing: every changed line is an intentional (or caught!)
# numeric drift of the seeded pipeline.
set -eu
BUILD="${1:-build}"
if [ ! -x "$BUILD/tests/test_golden" ]; then
  echo "update.sh: $BUILD/tests/test_golden not built (cmake --build $BUILD)" >&2
  exit 1
fi
CATI_UPDATE_GOLDEN=1 "$BUILD/tests/test_golden"
