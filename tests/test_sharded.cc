// CSHD sharded corpus + streaming training (DESIGN.md §12).
//
// The contract under test, in three layers:
//
//   * container: a ShardWriter-built directory streams back exactly the
//     VUCs of the in-memory dataset built from the same binaries in the
//     same order, and every corruption (flipped shard byte, truncated or
//     missing manifest, deleted shard file, tampered counts/CRCs) is a
//     typed CorruptError naming the shard — never a wrong answer;
//   * determinism: Engine::train over a ShardedSource is bit-identical to
//     the in-memory path at any --jobs/--batch, including through a
//     checkpoint stop/resume, and checkpoints are interchangeable between
//     the two paths (the fingerprint is corpus counts, not the shard plan);
//   * durability: a writer killed at any fs.* seam leaves only complete
//     shards and no (or a complete) manifest, and a clean rerun into the
//     same directory recovers fully.
//
// Tool-level legs (exit codes, --progress, --max-resident, metrics names)
// drive the real cati-synth/cati-train binaries from CATI_TOOL_DIR.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cati/engine.h"
#include "common/errors.h"
#include "common/fault.h"
#include "common/parallel.h"
#include "corpus/corpus.h"
#include "corpus/sharded.h"
#include "corpus/source.h"
#include "synth/synth.h"

namespace cati {
namespace {

namespace stdfs = std::filesystem;

constexpr int kWindow = 4;
constexpr uint64_t kSeed = 0x5eed;
constexpr uint64_t kShardVucs = 120;

/// Per-binary datasets from the same deterministic plan cati-synth --shards
/// replays; generated once, copied per use (append consumes its argument).
const std::vector<corpus::Dataset>& microParts() {
  static const std::vector<corpus::Dataset>* parts = [] {
    auto* v = new std::vector<corpus::Dataset>;
    for (const auto& j : synth::corpusPlan(1, 4, kSeed)) {
      const synth::Binary bin =
          synth::generateBinary(j.profile, synth::Dialect::Gcc, j.opt, j.seed);
      v->push_back(corpus::extractGroundTruth(bin, kWindow));
    }
    return v;
  }();
  return *parts;
}

corpus::Dataset inMemoryDataset() {
  corpus::Dataset all;
  all.window = kWindow;
  for (corpus::Dataset p : microParts()) all.append(std::move(p));
  return all;
}

void writeShards(const stdfs::path& dir, uint64_t shardVucs = kShardVucs) {
  corpus::ShardWriter w(dir, kWindow, shardVucs);
  for (corpus::Dataset p : microParts()) w.append(std::move(p));
  w.finish();
}

EngineConfig shardCfg() {
  EngineConfig cfg;
  cfg.window = kWindow;
  cfg.w2v.dim = 8;
  cfg.w2v.epochs = 1;
  cfg.conv1 = 4;
  cfg.conv2 = 8;
  cfg.fcHidden = 12;
  cfg.epochs = 1;
  cfg.maxTrainPerStage = 150;
  cfg.seed = 7;
  cfg.verbose = false;
  return cfg;
}

std::string serialized(const Engine& e) {
  std::ostringstream os;
  e.save(os);
  return std::move(os).str();
}

void expectVucEq(const corpus::Vuc& a, const corpus::Vuc& b, size_t i) {
  EXPECT_EQ(a.window, b.window) << "vuc " << i;
  EXPECT_EQ(a.posLabel, b.posLabel) << "vuc " << i;
  EXPECT_EQ(a.label, b.label) << "vuc " << i;
  EXPECT_EQ(a.varId, b.varId) << "vuc " << i;
}

/// Flips one byte in the middle of `p` in place (no atomic publish — this
/// IS the corruption).
void flipByte(const stdfs::path& p) {
  std::string bytes;
  {
    std::ifstream is(p, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    bytes = std::move(buf).str();
  }
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  std::ofstream os(p, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class ShardedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = stdfs::temp_directory_path() /
           ("cati_sharded_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    stdfs::remove_all(dir_);
    stdfs::create_directories(dir_);
  }
  void TearDown() override {
    fault::configureForTest("");
    stdfs::remove_all(dir_);
  }

  stdfs::path corpusDir() const { return dir_ / "corpus"; }

  std::string trainMem(int jobs, int batch,
                       const TrainCheckpointing* ck = nullptr) {
    par::ThreadPool pool(jobs);
    EngineConfig cfg = shardCfg();
    if (batch > 0) cfg.batchSize = batch;
    Engine e(cfg);
    e.train(inMemoryDataset(), &pool, ck);
    return serialized(e);
  }

  std::string trainStream(int jobs, int batch,
                          const TrainCheckpointing* ck = nullptr) {
    par::ThreadPool pool(jobs);
    EngineConfig cfg = shardCfg();
    if (batch > 0) cfg.batchSize = batch;
    Engine e(cfg);
    corpus::ShardedCorpus sc(corpusDir());
    corpus::ShardedSource src(sc);
    e.train(src, &pool, ck);
    return serialized(e);
  }

  stdfs::path dir_;
};

// --- container round-trip ----------------------------------------------------

TEST_F(ShardedTest, StreamsBackExactlyTheInMemoryVucs) {
  writeShards(corpusDir());
  const corpus::Dataset all = inMemoryDataset();
  corpus::ShardedCorpus sc(corpusDir());

  ASSERT_GE(sc.numShards(), 2U) << "micro corpus must span several shards "
                                   "or the suite tests nothing";
  EXPECT_EQ(sc.window(), kWindow);
  EXPECT_EQ(sc.numVucs(), all.vucs.size());
  EXPECT_EQ(sc.numVars(), all.vars.size());
  EXPECT_EQ(sc.manifest().targetVucs, kShardVucs);

  // Labels are resident from the manifest — no shard I/O involved.
  for (size_t i = 0; i < all.vucs.size(); ++i) {
    ASSERT_EQ(sc.labelOf(i), all.vucs[i].label) << "label " << i;
  }

  // The streamed VUC sequence is the dataset, in order, ids remapped to
  // the global ranges.
  corpus::ShardedSource src(sc);
  size_t i = 0;
  src.forEach([&](const corpus::Vuc& v) {
    ASSERT_LT(i, all.vucs.size());
    expectVucEq(v, all.vucs[i], i);
    ++i;
  });
  EXPECT_EQ(i, all.vucs.size());

  // Bases are exact prefix sums.
  uint64_t vucs = 0;
  for (size_t s = 0; s < sc.numShards(); ++s) {
    EXPECT_EQ(sc.vucBase(s), vucs);
    vucs += sc.manifest().shards[s].vucs;
  }
  EXPECT_EQ(vucs, sc.numVucs());
}

TEST_F(ShardedTest, GatherKeepsExactlyTheRequestedVucs) {
  writeShards(corpusDir());
  const corpus::Dataset all = inMemoryDataset();
  corpus::ShardedCorpus sc(corpusDir());
  corpus::ShardedSource src(sc);

  const auto last = static_cast<uint32_t>(all.vucs.size() - 1);
  // Unsorted with a duplicate: gather must canonicalize.
  const std::vector<uint32_t> want = {last, 5, 0, 5,
                                      static_cast<uint32_t>(kShardVucs + 3)};
  src.gather(want);
  for (const uint32_t i : want) {
    expectVucEq(src.vuc(i), all.vucs[i], i);
  }
  // An index that was never gathered is a programming error, not a silent
  // wrong VUC.
  EXPECT_THROW(src.vuc(1), std::logic_error);
}

TEST_F(ShardedTest, ResidentEstimateIsPositiveAndMonotonicInCap) {
  writeShards(corpusDir());
  corpus::ShardedCorpus sc(corpusDir());
  const uint64_t small = sc.streamingResidentBytes(10);
  const uint64_t large = sc.streamingResidentBytes(10000);
  EXPECT_GT(small, 0U);
  EXPECT_GE(large, small);
}

// --- determinism -------------------------------------------------------------

TEST_F(ShardedTest, TrainingIsBitIdenticalToInMemoryAcrossJobsAndBatch) {
  writeShards(corpusDir());
  for (const int batch : {1, 8}) {
    const std::string baseline = trainMem(1, batch);
    ASSERT_FALSE(baseline.empty());
    for (const int jobs : {1, 2}) {
      EXPECT_EQ(trainStream(jobs, batch), baseline)
          << "batch " << batch << ", jobs " << jobs
          << ": streaming model differs from in-memory";
    }
  }
}

TEST_F(ShardedTest, StreamingCheckpointStopResumeIsBitIdentical) {
  writeShards(corpusDir());
  const std::string baseline = trainMem(1, 0);
  // epochs=1 => boundaries: 1 post-word2vec + one per stage.
  constexpr int kBoundaries = 1 + kNumStages;
  for (int boundary = 1; boundary <= kBoundaries; ++boundary) {
    const stdfs::path d = dir_ / ("ck" + std::to_string(boundary));
    const TrainCheckpointing ck{d, 1, false};
    fault::configureForTest("stop@train.checkpoint:" +
                            std::to_string(boundary));
    bool stopped = false;
    try {
      trainStream(1, 0, &ck);
    } catch (const fault::Stop&) {
      stopped = true;
    }
    fault::configureForTest("");
    ASSERT_TRUE(stopped) << "boundary " << boundary << " never fired";
    const TrainCheckpointing rk{d, 1, true};
    // Resume at a different job count: the sweep must also hold across it.
    EXPECT_EQ(trainStream(boundary % 2 == 0 ? 2 : 1, 0, &rk), baseline)
        << "boundary " << boundary << ": streaming resume differs";
  }
}

TEST_F(ShardedTest, CheckpointsInterchangeableBetweenMemoryAndStreaming) {
  writeShards(corpusDir());
  const std::string baseline = trainMem(1, 0);

  // Checkpoint written by the in-memory path, resumed by streaming.
  const stdfs::path d1 = dir_ / "mem2stream";
  fault::configureForTest("stop@train.checkpoint:3");
  const TrainCheckpointing c1{d1, 1, false};
  EXPECT_THROW(trainMem(1, 0, &c1), fault::Stop);
  fault::configureForTest("");
  const TrainCheckpointing r1{d1, 1, true};
  EXPECT_EQ(trainStream(1, 0, &r1), baseline)
      << "streaming resume of an in-memory checkpoint differs";

  // And the reverse direction.
  const stdfs::path d2 = dir_ / "stream2mem";
  fault::configureForTest("stop@train.checkpoint:3");
  const TrainCheckpointing c2{d2, 1, false};
  EXPECT_THROW(trainStream(1, 0, &c2), fault::Stop);
  fault::configureForTest("");
  const TrainCheckpointing r2{d2, 1, true};
  EXPECT_EQ(trainMem(1, 0, &r2), baseline)
      << "in-memory resume of a streaming checkpoint differs";
}

// --- corruption matrix -------------------------------------------------------

TEST_F(ShardedTest, MissingManifestIsCorruptError) {
  stdfs::create_directories(corpusDir());
  try {
    corpus::ShardedCorpus sc(corpusDir());
    FAIL() << "opened a directory with no manifest";
  } catch (const CorruptError& e) {
    EXPECT_NE(std::string(e.what()).find("missing manifest"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(ShardedTest, TruncatedManifestIsCorruptError) {
  writeShards(corpusDir());
  const stdfs::path mf = corpusDir() / corpus::kManifestName;
  const auto size = stdfs::file_size(mf);
  stdfs::resize_file(mf, size - 3);
  EXPECT_THROW(corpus::ShardedCorpus sc(corpusDir()), CorruptError);
}

TEST_F(ShardedTest, FlippedShardByteIsCorruptErrorNamingTheShard) {
  writeShards(corpusDir());
  flipByte(corpusDir() / corpus::shardFileName(1));
  corpus::ShardedCorpus sc(corpusDir());  // manifest untouched: opens fine
  EXPECT_NO_THROW(sc.readShard(0));
  try {
    sc.readShard(1);
    FAIL() << "decoded a shard whose bytes were flipped";
  } catch (const CorruptError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard 1"), std::string::npos) << what;
    EXPECT_NE(what.find(corpus::shardFileName(1)), std::string::npos) << what;
  }
  // The streaming pass surfaces the same error (from the prefetch thread).
  corpus::ShardedSource src(sc);
  EXPECT_THROW(src.forEach([](const corpus::Vuc&) {}), CorruptError);
}

TEST_F(ShardedTest, DeletedShardFileIsCorruptErrorNamingTheShard) {
  writeShards(corpusDir());
  stdfs::remove(corpusDir() / corpus::shardFileName(1));
  corpus::ShardedCorpus sc(corpusDir());
  try {
    corpus::ShardedSource src(sc);
    src.forEach([](const corpus::Vuc&) {});
    FAIL() << "streamed a corpus with a deleted shard file";
  } catch (const CorruptError& e) {
    EXPECT_NE(std::string(e.what()).find("shard 1"), std::string::npos)
        << e.what();
  }
}

TEST_F(ShardedTest, TamperedManifestVucCountIsCorruptError) {
  writeShards(corpusDir());
  corpus::ShardManifest m = corpus::ShardedCorpus(corpusDir()).manifest();
  m.shards[0].vucs += 1;
  m.shards[0].labels.push_back(0);  // keep open-time validation satisfied
  corpus::writeManifest(corpusDir(), m);
  corpus::ShardedCorpus sc(corpusDir());
  try {
    sc.readShard(0);
    FAIL() << "accepted a shard whose manifest counts were tampered";
  } catch (const CorruptError& e) {
    EXPECT_NE(std::string(e.what()).find("shard 0"), std::string::npos)
        << e.what();
  }
}

TEST_F(ShardedTest, TamperedManifestCrcIsCorruptError) {
  writeShards(corpusDir());
  corpus::ShardManifest m = corpus::ShardedCorpus(corpusDir()).manifest();
  m.shards[0].crc ^= 0x1;
  corpus::writeManifest(corpusDir(), m);
  corpus::ShardedCorpus sc(corpusDir());
  try {
    sc.readShard(0);
    FAIL() << "accepted a shard whose manifest CRC was tampered";
  } catch (const CorruptError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard 0"), std::string::npos) << what;
    EXPECT_NE(what.find("checksum"), std::string::npos) << what;
  }
}

// --- writer durability -------------------------------------------------------

TEST_F(ShardedTest, StaleTempDebrisIsSweptBeforeWriting) {
  stdfs::create_directories(corpusDir());
  const stdfs::path debris = corpusDir() / "corpus.cshd.cati-tmp.99999";
  std::ofstream(debris) << "leftover";
  ASSERT_TRUE(stdfs::exists(debris));
  writeShards(corpusDir());
  EXPECT_FALSE(stdfs::exists(debris))
      << "ShardWriter did not sweep a previous run's temp debris";
  EXPECT_NO_THROW(corpus::ShardedCorpus sc(corpusDir()));
}

TEST_F(ShardedTest, WriterStoppedAtEveryFsSeamLeavesOnlyCompleteState) {
  const corpus::Dataset all = inMemoryDataset();
  int fired = 0;
  for (int n = 1; n <= 500; ++n) {
    const stdfs::path d = dir_ / ("fi" + std::to_string(n));
    fault::configureForTest("stop@fs.*:" + std::to_string(n));
    bool stopped = false;
    try {
      writeShards(d);
    } catch (const fault::Stop&) {
      stopped = true;
    }
    fault::configureForTest("");
    if (!stopped) {
      // The whole run completed: the sweep covered every seam.
      ASSERT_GT(fired, 0) << "no fs seam ever fired — probes missing?";
      corpus::ShardedCorpus sc(d);
      EXPECT_EQ(sc.numVucs(), all.vucs.size());
      return;
    }
    ++fired;
    // Interrupted: either the manifest is absent (directory reads as "not
    // a corpus") or the directory is already fully valid.
    try {
      corpus::ShardedCorpus sc(d);
      corpus::ShardedSource src(sc);
      size_t seen = 0;
      src.forEach([&](const corpus::Vuc&) { ++seen; });
      EXPECT_EQ(seen, all.vucs.size())
          << "seam " << n << ": manifest published before all shards";
    } catch (const CorruptError& e) {
      EXPECT_NE(std::string(e.what()).find("missing manifest"),
                std::string::npos)
          << "seam " << n << ": interrupted writer left a torn corpus: "
          << e.what();
    }
    // A clean rerun into the same directory must recover fully.
    writeShards(d);
    corpus::ShardedCorpus sc(d);
    EXPECT_EQ(sc.numVucs(), all.vucs.size()) << "seam " << n;
  }
  FAIL() << "fs.* sweep never ran to completion within 500 seams";
}

TEST_F(ShardedTest, InjectedShortWriteFailsWithoutTornFiles) {
  fault::configureForTest("truncate@fs.write:2");
  EXPECT_THROW(writeShards(corpusDir()), IoError);
  fault::configureForTest("");
  // The truncated file was a temp; the directory must hold no manifest and
  // rebuild cleanly.
  EXPECT_FALSE(stdfs::exists(corpusDir() / corpus::kManifestName));
  writeShards(corpusDir());
  EXPECT_NO_THROW(corpus::ShardedCorpus sc(corpusDir()));
}

// --- tool-level legs ---------------------------------------------------------

int runCmd(const std::string& cmd) {
  const int rc = std::system(cmd.c_str());
  if (rc == -1) return -1;
  if (WIFEXITED(rc)) return WEXITSTATUS(rc);
  return -1;
}

std::string slurp(const stdfs::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  return std::move(buf).str();
}

std::string toolPath(const char* tool) {
  return (stdfs::path(CATI_TOOL_DIR) / tool).string();
}

constexpr const char* kToolTrainFlags =
    " --epochs 1 --cap 120 --hidden 12 --dim 8 --jobs 1 --quiet";

class ShardedToolTest : public ShardedTest {
 protected:
  int synthShards(const std::string& extra = "") {
    return runCmd(toolPath("cati-synth") + " --shards " +
                  corpusDir().string() +
                  " --apps 1 --funcs 4 --seed 5 --window 4 --shard-vucs 150" +
                  extra + " >/dev/null 2>" + (dir_ / "synth.err").string());
  }
  int trainDir(const std::string& model, const std::string& extra = "") {
    return runCmd(toolPath("cati-train") + " " + (dir_ / model).string() +
                  " --corpus-dir " + corpusDir().string() + kToolTrainFlags +
                  extra + " >/dev/null 2>&1");
  }
};

TEST_F(ShardedToolTest, ToolPipelineMatchesInMemoryTrainingByteForByte) {
  ASSERT_EQ(synthShards(" --progress"), 0);
  EXPECT_NE(slurp(dir_ / "synth.err").find("cati-synth:"), std::string::npos)
      << "--progress emitted nothing on stderr";

  ASSERT_EQ(runCmd(toolPath("cati-train") + " " + (dir_ / "mem.bin").string() +
                   " --apps 1 --funcs 4 --seed 5 --window 4" +
                   kToolTrainFlags + " >/dev/null 2>&1"),
            0);
  const stdfs::path metrics = dir_ / "metrics.json";
  ASSERT_EQ(trainDir("stream.bin", " --metrics=" + metrics.string()), 0);

  const std::string mem = slurp(dir_ / "mem.bin");
  ASSERT_FALSE(mem.empty());
  EXPECT_EQ(slurp(dir_ / "stream.bin"), mem)
      << "cati-train --corpus-dir model differs from the in-memory one";

  const std::string json = slurp(metrics);
  for (const char* key : {"corpus.shards.read", "train.shard_ns",
                          "train.prefetch_stall_ns"}) {
    EXPECT_NE(json.find(key), std::string::npos)
        << key << " missing from --metrics output";
  }
}

TEST_F(ShardedToolTest, ToolProgressIsOffByDefault) {
  ASSERT_EQ(synthShards(), 0);
  EXPECT_EQ(slurp(dir_ / "synth.err").find("cati-synth:"), std::string::npos);
}

TEST_F(ShardedToolTest, ToolExitsCorruptCodeOnDamagedShard) {
  ASSERT_EQ(synthShards(), 0);
  flipByte(corpusDir() / corpus::shardFileName(0));
  EXPECT_EQ(trainDir("m.bin"), 4);
  EXPECT_FALSE(stdfs::exists(dir_ / "m.bin"));
}

TEST_F(ShardedToolTest, ToolUsageErrorsExitTwo) {
  ASSERT_EQ(synthShards(), 0);
  // Generated-corpus flags conflict with --corpus-dir.
  EXPECT_EQ(trainDir("m.bin", " --apps 2"), 2);
  // --max-resident without --corpus-dir.
  EXPECT_EQ(runCmd(toolPath("cati-train") + " " + (dir_ / "m.bin").string() +
                   " --max-resident 64M" + kToolTrainFlags +
                   " >/dev/null 2>&1"),
            2);
  // Explicit --window disagreeing with the manifest.
  EXPECT_EQ(trainDir("m.bin", " --window 6"), 2);
  // A budget the streaming working set cannot fit: refused up front.
  EXPECT_EQ(trainDir("m.bin", " --max-resident 1K"), 2);
  // And a generous budget is admitted.
  EXPECT_EQ(trainDir("ok.bin", " --max-resident 1G"), 0);
  // cati-synth: image-only flags with --shards.
  EXPECT_EQ(runCmd(toolPath("cati-synth") + " --shards " +
                   (dir_ / "c2").string() + " --strip >/dev/null 2>&1"),
            2);
  // cati-synth: shard-only flags without --shards.
  EXPECT_EQ(runCmd(toolPath("cati-synth") + " " + (dir_ / "o.img").string() +
                   " --shard-vucs 100 >/dev/null 2>&1"),
            2);
}

}  // namespace
}  // namespace cati
