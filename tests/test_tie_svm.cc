// Tests for the TIE-style lattice baseline and the linear SVM baseline.
#include <gtest/gtest.h>

#include "baseline/svm.h"
#include "baseline/tie.h"
#include "synth/synth.h"

namespace cati::baseline {
namespace {

corpus::Vuc vucWithTarget(const char* mnem, const char* op1,
                          const char* op2) {
  corpus::Vuc v;
  v.window.resize(21);
  v.posLabel.assign(21, -1);
  v.window[10] = {mnem, op1, op2};
  return v;
}

TEST(Tie, EvidenceGathering) {
  const std::vector<corpus::Vuc> vucs = {
      vucWithTarget("movss", "IMM(%rsp)", "%xmm0"),
      vucWithTarget("movss", "%xmm0", "IMM(%rsp)"),
  };
  const TieEvidence ev = TieBaseline::gather(vucs);
  EXPECT_TRUE(ev.sse);
  EXPECT_FALSE(ev.x87);
  EXPECT_EQ(ev.width, 4);
  EXPECT_EQ(TieBaseline::resolve(ev), TypeLabel::Float);
}

TEST(Tie, LatticeResolution) {
  TieBaseline tie;
  // x87 wins everything.
  EXPECT_EQ(tie.predictVariable(
                std::vector<corpus::Vuc>{vucWithTarget("fldt", "IMM(%rsp)",
                                                       "BLANK")}),
            TypeLabel::LongDouble);
  // Double by 8-byte SSE width.
  EXPECT_EQ(tie.predictVariable(std::vector<corpus::Vuc>{
                vucWithTarget("movsd", "%xmm1", "IMM(%rsp)")}),
            TypeLabel::Double);
  // lea + byte member stores => struct.
  EXPECT_EQ(tie.predictVariable(std::vector<corpus::Vuc>{
                vucWithTarget("lea", "IMM(%rsp)", "%rax"),
                vucWithTarget("movb", "$IMM", "IMM(%rsp)")}),
            TypeLabel::Struct);
  // Null checks + stride => pointer.
  EXPECT_EQ(tie.predictVariable(std::vector<corpus::Vuc>{
                vucWithTarget("cmpq", "$IMM", "IMM(%rsp)"),
                vucWithTarget("addq", "$IMM", "IMM(%rsp)")}),
            TypeLabel::StructPtr);
  // 8-byte arithmetic without pointer idioms + unsigned evidence => ulong.
  EXPECT_EQ(tie.predictVariable(std::vector<corpus::Vuc>{
                vucWithTarget("mov", "IMM(%rsp)", "%rax"),
                vucWithTarget("movzwl", "IMM(%rsp)", "%eax"),
                vucWithTarget("mov", "IMM(%rsp)", "%rdx")}),
            TypeLabel::ULongInt);
  // setcc + byte => bool.
  EXPECT_EQ(tie.predictVariable(std::vector<corpus::Vuc>{
                vucWithTarget("movb", "$IMM", "IMM(%rsp)"),
                vucWithTarget("xorb", "$IMM", "IMM(%rsp)")}),
            TypeLabel::Bool);
  // Sign-extended byte => char.
  EXPECT_EQ(tie.predictVariable(std::vector<corpus::Vuc>{
                vucWithTarget("movsbl", "IMM(%rsp)", "%eax")}),
            TypeLabel::Char);
  // Zero-extended short => unsigned short.
  EXPECT_EQ(tie.predictVariable(std::vector<corpus::Vuc>{
                vucWithTarget("movzwl", "IMM(%rsp)", "%eax")}),
            TypeLabel::UShortInt);
}

TEST(Tie, BeatsChanceOnRealCorpus) {
  const synth::Binary bin = synth::generateBinary(
      synth::defaultProfile("tie", 0x6, 20), synth::Dialect::Gcc, 2, 91);
  const corpus::Dataset test = corpus::extractGroundTruth(bin);
  const auto byVar = test.vucsByVar();
  TieBaseline tie;
  size_t ok = 0;
  size_t total = 0;
  for (size_t v = 0; v < byVar.size(); ++v) {
    if (byVar[v].empty() || test.vars[v].label == TypeLabel::kCount) continue;
    std::vector<corpus::Vuc> vucs;
    for (const uint32_t i : byVar[v]) vucs.push_back(test.vucs[i]);
    ++total;
    if (tie.predictVariable(vucs) == test.vars[v].label) ++ok;
  }
  // Rule-based with zero training: clearly above 19-class chance.
  EXPECT_GT(static_cast<double>(ok) / static_cast<double>(total), 0.25);
}

TEST(Svm, LearnsAndGeneralizes) {
  const auto bins = synth::generateCorpus(4, 10, synth::Dialect::Gcc, 31);
  const corpus::Dataset train = corpus::extractAll(bins, 10);
  SvmConfig cfg;
  cfg.epochs = 2;
  SvmBaseline svm(cfg);
  svm.train(train);

  const synth::Binary bin = synth::generateBinary(
      synth::defaultProfile("svmtest", 0x6, 16), synth::Dialect::Gcc, 2, 91);
  const corpus::Dataset test = corpus::extractGroundTruth(bin);
  const auto byVar = test.vucsByVar();
  size_t ok = 0;
  size_t total = 0;
  for (size_t v = 0; v < byVar.size(); ++v) {
    if (byVar[v].empty() || test.vars[v].label == TypeLabel::kCount) continue;
    std::vector<corpus::Vuc> vucs;
    for (const uint32_t i : byVar[v]) vucs.push_back(test.vucs[i]);
    ++total;
    if (svm.predictVariable(vucs) == test.vars[v].label) ++ok;
  }
  // A windowed linear model should comfortably beat the no-context floor.
  EXPECT_GT(static_cast<double>(ok) / static_cast<double>(total), 0.45);
}

TEST(Svm, DeterministicPredictions) {
  const auto bins = synth::generateCorpus(2, 6, synth::Dialect::Gcc, 5);
  const corpus::Dataset train = corpus::extractAll(bins, 10);
  SvmConfig cfg;
  cfg.epochs = 1;
  SvmBaseline a(cfg);
  SvmBaseline b(cfg);
  a.train(train);
  b.train(train);
  for (size_t i = 0; i < 50 && i < train.vucs.size(); ++i) {
    EXPECT_EQ(a.predictVuc(train.vucs[i]), b.predictVuc(train.vucs[i]));
  }
}

}  // namespace
}  // namespace cati::baseline
