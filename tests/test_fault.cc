// Tests for the deterministic fault-injection layer (common/fault.h): spec
// parsing, Nth-hit and probabilistic firing, wildcard sites, action
// semantics of failPoint/killPoint, and schedule replayability.
#include "common/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/errors.h"

namespace cati::fault {
namespace {

/// Disarms the injector after every test so suites can run in any order.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { configureForTest(""); }
};

TEST_F(FaultTest, DisarmedIsFree) {
  configureForTest("");
  EXPECT_FALSE(enabled());
  EXPECT_EQ(hit("fs.write"), Action::kNone);
  EXPECT_FALSE(failPoint("fs.write"));
  EXPECT_NO_THROW(killPoint("train.checkpoint"));
}

TEST_F(FaultTest, NthHitFiresExactlyOnce) {
  configureForTest("fail@fs.write:3");
  EXPECT_TRUE(enabled());
  EXPECT_EQ(hit("fs.write"), Action::kNone);
  EXPECT_EQ(hit("fs.write"), Action::kNone);
  EXPECT_EQ(hit("fs.write"), Action::kFail);  // third hit
  // Nth rules are one-shot: later hits pass.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(hit("fs.write"), Action::kNone);
}

TEST_F(FaultTest, SiteMatchIsExactUnlessWildcard) {
  configureForTest("fail@fs.write:1");
  EXPECT_EQ(hit("fs.writeX"), Action::kNone);
  EXPECT_EQ(hit("fs.wri"), Action::kNone);
  EXPECT_EQ(hit("fs.write"), Action::kFail);

  configureForTest("stop@fs.*:1");
  EXPECT_EQ(hit("train.checkpoint"), Action::kNone);
  EXPECT_EQ(hit("fs.rename"), Action::kStop);
}

TEST_F(FaultTest, MultipleRulesCountIndependently) {
  configureForTest("fail@fs.write:2,stop@fs.fsync:1");
  EXPECT_EQ(hit("fs.fsync"), Action::kStop);   // rule 2, hit 1
  EXPECT_EQ(hit("fs.write"), Action::kNone);   // rule 1, hit 1
  EXPECT_EQ(hit("fs.write"), Action::kFail);   // rule 1, hit 2
}

TEST_F(FaultTest, MalformedRulesAreIgnored) {
  // The injector must never take a run down by itself: garbage rules drop.
  configureForTest("bogus,fail@:1,@site:1,zap@fs.write:1,fail@fs.write:,"
                   "fail@fs.write:0,fail@fs.write:p=2.0");
  EXPECT_FALSE(enabled());
  // A valid rule mixed with garbage still arms.
  configureForTest("bogus,fail@fs.write:1");
  EXPECT_TRUE(enabled());
  EXPECT_EQ(hit("fs.write"), Action::kFail);
}

TEST_F(FaultTest, FailPointActions) {
  configureForTest("fail@a:1,truncate@b:1,stop@c:1");
  EXPECT_THROW(failPoint("a"), IoError);
  EXPECT_TRUE(failPoint("b"));   // caller simulates the short write
  EXPECT_THROW(failPoint("c"), Stop);
  // All one-shot rules spent.
  EXPECT_FALSE(failPoint("a"));
  EXPECT_FALSE(failPoint("b"));
  EXPECT_FALSE(failPoint("c"));
}

TEST_F(FaultTest, KillPointDegradesNonKillActionsToStop) {
  // At a kill seam there is no write to fail or shorten, so fail/truncate
  // degrade to the catchable crash (stop). kill itself would _exit(137) —
  // covered by the subprocess sweep in test_crash.cc.
  configureForTest("fail@x:1,truncate@y:1,stop@z:1");
  EXPECT_THROW(killPoint("x"), Stop);
  EXPECT_THROW(killPoint("y"), Stop);
  EXPECT_THROW(killPoint("z"), Stop);
}

TEST_F(FaultTest, ProbabilisticScheduleReplaysWithSameSeed) {
  const auto schedule = [](uint64_t seed) {
    configureForTest("fail@p:p=0.5", seed);
    std::vector<bool> fired;
    fired.reserve(64);
    for (int i = 0; i < 64; ++i) fired.push_back(hit("p") == Action::kFail);
    return fired;
  };
  const auto a = schedule(7);
  const auto b = schedule(7);
  EXPECT_EQ(a, b) << "same seed must replay the same fault schedule";
  const auto c = schedule(8);
  EXPECT_NE(a, c) << "a different seed should produce a different schedule";
  // p=0.5 over 64 draws: both outcomes must actually occur.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 64);
}

TEST_F(FaultTest, ProbabilityBoundsAreDeterministic) {
  configureForTest("fail@always:p=1.0");
  for (int i = 0; i < 8; ++i) EXPECT_EQ(hit("always"), Action::kFail);
  configureForTest("fail@never:p=0.0");
  for (int i = 0; i < 8; ++i) EXPECT_EQ(hit("never"), Action::kNone);
}

TEST_F(FaultTest, StopCarriesSiteName) {
  configureForTest("stop@train.checkpoint:1");
  try {
    killPoint("train.checkpoint");
    FAIL() << "stop rule did not fire";
  } catch (const Stop& e) {
    EXPECT_NE(std::string(e.what()).find("train.checkpoint"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace cati::fault
