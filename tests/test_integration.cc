// Cross-module integration tests: the full pipeline at small scale,
// checked end-to-end — training improves over baselines on uncertain
// samples, the recovered-variable path agrees with the ground-truth path,
// cross-compiler transfer behaves as §VIII describes, and the voting
// pipeline's accuracy at variable granularity is at least VUC granularity.
#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/baseline.h"
#include "cati/engine.h"
#include "corpus/corpus.h"
#include "dataflow/recovery.h"
#include "synth/synth.h"

namespace cati {
namespace {

// One shared small training run for the whole file (seconds, not minutes).
class Pipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto bins = synth::generateCorpus(10, 16, synth::Dialect::Gcc, 101);
    train_ = new corpus::Dataset(corpus::extractAll(bins));
    EngineConfig cfg;
    cfg.epochs = 5;
    cfg.maxTrainPerStage = 10000;
    cfg.fcHidden = 96;
    cfg.conv1 = 24;
    cfg.conv2 = 32;
    engine_ = new Engine(cfg);
    engine_->train(*train_);

    const synth::Binary bin = synth::generateBinary(
        synth::defaultProfile("it", 0x7777, 24), synth::Dialect::Gcc, 2, 909);
    test_ = new corpus::Dataset(corpus::extractGroundTruth(bin));
    testBin_ = new synth::Binary(bin);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete train_;
    delete test_;
    delete testBin_;
  }

  static double engineVarAccuracy(const corpus::Dataset& ds) {
    const auto byVar = ds.vucsByVar();
    size_t ok = 0;
    size_t total = 0;
    for (size_t v = 0; v < byVar.size(); ++v) {
      if (byVar[v].empty() || ds.vars[v].label == TypeLabel::kCount) continue;
      std::vector<StageProbs> probs;
      for (const uint32_t i : byVar[v]) {
        probs.push_back(engine_->predictVuc(ds.vucs[i]));
      }
      ++total;
      if (engine_->voteVariable(probs).finalType == ds.vars[v].label) ++ok;
    }
    return total ? static_cast<double>(ok) / static_cast<double>(total) : 0.0;
  }

  static corpus::Dataset* train_;
  static corpus::Dataset* test_;
  static synth::Binary* testBin_;
  static Engine* engine_;
};

corpus::Dataset* Pipeline::train_ = nullptr;
corpus::Dataset* Pipeline::test_ = nullptr;
synth::Binary* Pipeline::testBin_ = nullptr;
Engine* Pipeline::engine_ = nullptr;

TEST_F(Pipeline, GeneralizesToUnseenBinary) {
  // Far above the 19-class majority baseline on a never-seen binary.
  EXPECT_GT(engineVarAccuracy(*test_), 0.5);
}

TEST_F(Pipeline, BeatsNoContextBaselineOnUncertainVucs) {
  // The paper's core claim, as a falsifiable assertion: restricted to
  // uncertain samples (target instructions whose generalized text maps to
  // multiple types in the TRAINING data), the context model must beat the
  // Bayes-optimal no-context model.
  baseline::NoContextBaseline nc;
  nc.train(*train_);

  // Target texts with mixed labels in training.
  std::unordered_map<std::string, std::set<TypeLabel>> textLabels;
  for (const corpus::Vuc& v : train_->vucs) {
    if (v.label != TypeLabel::kCount) {
      textLabels[v.target().text()].insert(v.label);
    }
  }

  size_t total = 0;
  size_t okCtx = 0;
  size_t okNc = 0;
  for (const corpus::Vuc& v : test_->vucs) {
    if (v.label == TypeLabel::kCount) continue;
    const auto it = textLabels.find(v.target().text());
    if (it == textLabels.end() || it->second.size() < 2) continue;
    ++total;
    if (engine_->routeVuc(engine_->predictVuc(v)) == v.label) ++okCtx;
    if (nc.predictVuc(v) == v.label) ++okNc;
  }
  ASSERT_GT(total, 100U);  // uncertain samples must be plentiful
  EXPECT_GT(static_cast<double>(okCtx), static_cast<double>(okNc) * 1.02)
      << "context model " << okCtx << "/" << total << " vs no-context "
      << okNc << "/" << total;
}

TEST_F(Pipeline, RecoveredPathTracksGroundTruthPath) {
  // Accuracy through our own variable recovery should be within a modest
  // gap of the ground-truth-location accuracy (the paper's ~90% recovery
  // slot costs some points but not a collapse).
  const corpus::Dataset recovered = corpus::extractRecovered(*testBin_);
  const double gt = engineVarAccuracy(*test_);
  // Only labeled recovered variables are scoreable.
  corpus::Dataset labeledOnly = recovered;
  const double rec = engineVarAccuracy(labeledOnly);
  EXPECT_GT(rec, gt - 0.25);
}

TEST_F(Pipeline, VotingAtLeastMatchesVucGranularity) {
  // Table VI shape: variable-level (voted) accuracy >= VUC-level accuracy
  // minus noise.
  size_t okVuc = 0;
  size_t nVuc = 0;
  for (const corpus::Vuc& v : test_->vucs) {
    if (v.label == TypeLabel::kCount) continue;
    ++nVuc;
    if (engine_->routeVuc(engine_->predictVuc(v)) == v.label) ++okVuc;
  }
  const double vucAcc =
      static_cast<double>(okVuc) / static_cast<double>(nVuc);
  EXPECT_GE(engineVarAccuracy(*test_), vucAcc - 0.02);
}

TEST_F(Pipeline, CrossCompilerTransferDegradesGracefully) {
  // §VIII: a GCC-trained model applied to Clang code loses accuracy but
  // does not collapse to chance (idioms overlap heavily).
  const synth::Binary clangBin = synth::generateBinary(
      synth::defaultProfile("itc", 0x7777, 16), synth::Dialect::Clang, 2, 11);
  const corpus::Dataset clangDs = corpus::extractGroundTruth(clangBin);
  const double acc = engineVarAccuracy(clangDs);
  EXPECT_GT(acc, 0.25);  // well above 19-class chance
}

TEST_F(Pipeline, EndToEndMatchesManualPipeline) {
  // analyzeFunction must agree with manually running recovery + extraction
  // + predict + vote.
  const synth::FunctionCode& fn = testBin_->funcs[0];
  const auto analyzed = engine_->analyzeFunction(fn.insns);

  const dataflow::RecoveryResult rec = dataflow::recoverVariables(fn.insns);
  ASSERT_EQ(analyzed.size(),
            std::count_if(rec.vars.begin(), rec.vars.end(),
                          [](const auto& rv) {
                            return !rv.targetInsns.empty();
                          }));
  for (const AnalyzedVariable& av : analyzed) {
    // Each analyzed variable corresponds to a recovered slot.
    const bool found = std::any_of(
        rec.vars.begin(), rec.vars.end(),
        [&](const auto& rv) { return rv.offset == av.location.offset; });
    EXPECT_TRUE(found);
  }
}

}  // namespace
}  // namespace cati
