// Cross-cutting property tests (parameterized sweeps) tying modules
// together: print/parse/generalize coherence over whole generated corpora,
// window-size invariants of VUC extraction, and algebraic properties of the
// confidence-clipped voting rule.
#include <gtest/gtest.h>

#include "cati/engine.h"
#include "corpus/corpus.h"
#include "synth/synth.h"

namespace cati {
namespace {

// --- printer/parser/generalization coherence ---------------------------------

class CorpusProperty
    : public ::testing::TestWithParam<std::tuple<synth::Dialect, int>> {};

TEST_P(CorpusProperty, PrintParseGeneralizeCoherent) {
  const auto [dialect, opt] = GetParam();
  const synth::Binary bin = synth::generateBinary(
      synth::defaultProfile("prop", 0x9, 10), dialect, opt, 333);
  for (const synth::FunctionCode& fn : bin.funcs) {
    for (const asmx::Instruction& ins : fn.insns) {
      // Everything the generator emits prints and re-parses identically...
      const auto back = asmx::parse(asmx::toString(ins));
      ASSERT_TRUE(back.has_value()) << asmx::toString(ins);
      EXPECT_EQ(*back, ins);
      // ...and generalization only depends on the printed form.
      EXPECT_EQ(corpus::generalize(*back).text(),
                corpus::generalize(ins).text());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, CorpusProperty,
    ::testing::Combine(::testing::Values(synth::Dialect::Gcc,
                                         synth::Dialect::Clang),
                       ::testing::Values(0, 1, 2, 3)));

// --- window-size invariants ----------------------------------------------------

class WindowProperty : public ::testing::TestWithParam<int> {};

TEST_P(WindowProperty, ExtractionInvariants) {
  const int w = GetParam();
  const synth::Binary bin = synth::generateBinary(
      synth::defaultProfile("win", 0x3, 8), synth::Dialect::Gcc, 2, 11);
  const corpus::Dataset ds = corpus::extractGroundTruth(bin, w);
  // The number of VUCs (target instructions) is independent of the window.
  const corpus::Dataset ref = corpus::extractGroundTruth(bin, 10);
  EXPECT_EQ(ds.vucs.size(), ref.vucs.size());
  for (const corpus::Vuc& v : ds.vucs) {
    ASSERT_EQ(v.window.size(), static_cast<size_t>(2 * w + 1));
    EXPECT_EQ(v.centre(), w);
    // The centre instruction is never BLANK and carries the VUC's label.
    EXPECT_NE(v.target().mnem, corpus::kBlank);
    EXPECT_EQ(v.posLabel[static_cast<size_t>(w)],
              static_cast<int8_t>(v.label));
  }
}

INSTANTIATE_TEST_SUITE_P(HalfWindows, WindowProperty,
                         ::testing::Values(1, 2, 3, 5, 10, 15));

// --- voting algebra --------------------------------------------------------------

StageProbs uniformExcept(Stage s, std::vector<float> dist) {
  StageProbs p;
  for (int i = 0; i < kNumStages; ++i) {
    const auto n = static_cast<size_t>(numClasses(static_cast<Stage>(i)));
    p.probs[static_cast<size_t>(i)].assign(n, 1.0F / static_cast<float>(n));
  }
  p.probs[static_cast<size_t>(s)] = std::move(dist);
  return p;
}

class VotingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VotingProperty, DecisionInvariants) {
  Rng rng(GetParam());
  const Engine e{EngineConfig{}};  // voting needs no trained model

  // Random stage-1 distributions for a variable with 1..6 VUCs.
  const int n = static_cast<int>(rng.uniformInt(1, 6));
  std::vector<StageProbs> probs;
  for (int i = 0; i < n; ++i) {
    const auto p1 = static_cast<float>(rng.uniform(0.01, 0.99));
    probs.push_back(uniformExcept(Stage::S1, {1.0F - p1, p1}));
  }

  const VariableDecision d = e.voteVariable(probs, 0.9F, true);

  // Permutation invariance.
  std::vector<StageProbs> shuffled = probs;
  rng.shuffle(shuffled);
  EXPECT_EQ(e.voteVariable(shuffled, 0.9F, true).stageClass,
            d.stageClass);

  // Duplication invariance: voting on the doubled multiset agrees (sums
  // scale by exactly 2).
  std::vector<StageProbs> doubled = probs;
  doubled.insert(doubled.end(), probs.begin(), probs.end());
  EXPECT_EQ(e.voteVariable(doubled, 0.9F, true).stageClass, d.stageClass);

  // The final type's root-to-leaf path is consistent with the per-stage
  // classes the vote reports.
  const StagePath path = pathOf(d.finalType);
  for (int i = 0; i < path.length; ++i) {
    const Stage s = path.stages[static_cast<size_t>(i)];
    EXPECT_EQ(stageClassOf(s, d.finalType),
              d.stageClass[static_cast<size_t>(s)]);
  }

  // Single-VUC voting without clipping = plain argmax routing.
  const std::vector<StageProbs> one = {probs[0]};
  const VariableDecision d1 = e.voteVariable(one, 0.9F, false);
  const int s1 = probs[0].probs[0][1] > probs[0].probs[0][0] ? 1 : 0;
  EXPECT_EQ(d1.stageClass[0], s1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VotingProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Clipping monotonicity: raising a single VUC's winning confidence above
// the threshold can only help that class.
TEST(VotingClip, PromotionNeverHurtsTheConfidentClass) {
  const Engine e{EngineConfig{}};
  for (float base = 0.55F; base < 0.9F; base += 0.05F) {
    const std::vector<StageProbs> weak = {
        uniformExcept(Stage::S1, {1.0F - base, base}),
        uniformExcept(Stage::S1, {0.6F, 0.4F}),
    };
    const std::vector<StageProbs> strong = {
        uniformExcept(Stage::S1, {0.05F, 0.95F}),  // clipped to 1.0
        uniformExcept(Stage::S1, {0.6F, 0.4F}),
    };
    const int weakCls = e.voteVariable(weak, 0.9F, true).stageClass[0];
    const int strongCls = e.voteVariable(strong, 0.9F, true).stageClass[0];
    // If the weak vote already chose class 1, the strong one must too.
    if (weakCls == 1) {
      EXPECT_EQ(strongCls, 1);
    }
  }
}

}  // namespace
}  // namespace cati
