// Cross-cutting property tests (parameterized sweeps) tying modules
// together: print/parse/generalize coherence over whole generated corpora,
// window-size invariants of VUC extraction, and algebraic properties of the
// confidence-clipped voting rule.
#include <gtest/gtest.h>

#include <algorithm>

#include "cati/engine.h"
#include "corpus/corpus.h"
#include "synth/synth.h"

namespace cati {
namespace {

// --- printer/parser/generalization coherence ---------------------------------

class CorpusProperty
    : public ::testing::TestWithParam<std::tuple<synth::Dialect, int>> {};

TEST_P(CorpusProperty, PrintParseGeneralizeCoherent) {
  const auto [dialect, opt] = GetParam();
  const synth::Binary bin = synth::generateBinary(
      synth::defaultProfile("prop", 0x9, 10), dialect, opt, 333);
  for (const synth::FunctionCode& fn : bin.funcs) {
    for (const asmx::Instruction& ins : fn.insns) {
      // Everything the generator emits prints and re-parses identically...
      const auto back = asmx::parse(asmx::toString(ins));
      ASSERT_TRUE(back.has_value()) << asmx::toString(ins);
      EXPECT_EQ(*back, ins);
      // ...and generalization only depends on the printed form.
      EXPECT_EQ(corpus::generalize(*back).text(),
                corpus::generalize(ins).text());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, CorpusProperty,
    ::testing::Combine(::testing::Values(synth::Dialect::Gcc,
                                         synth::Dialect::Clang),
                       ::testing::Values(0, 1, 2, 3)));

// --- window-size invariants ----------------------------------------------------

class WindowProperty : public ::testing::TestWithParam<int> {};

TEST_P(WindowProperty, ExtractionInvariants) {
  const int w = GetParam();
  const synth::Binary bin = synth::generateBinary(
      synth::defaultProfile("win", 0x3, 8), synth::Dialect::Gcc, 2, 11);
  const corpus::Dataset ds = corpus::extractGroundTruth(bin, w);
  // The number of VUCs (target instructions) is independent of the window.
  const corpus::Dataset ref = corpus::extractGroundTruth(bin, 10);
  EXPECT_EQ(ds.vucs.size(), ref.vucs.size());
  for (const corpus::Vuc& v : ds.vucs) {
    ASSERT_EQ(v.window.size(), static_cast<size_t>(2 * w + 1));
    EXPECT_EQ(v.centre(), w);
    // The centre instruction is never BLANK and carries the VUC's label.
    EXPECT_NE(v.target().mnem, corpus::kBlank);
    EXPECT_EQ(v.posLabel[static_cast<size_t>(w)],
              static_cast<int8_t>(v.label));
  }
}

INSTANTIATE_TEST_SUITE_P(HalfWindows, WindowProperty,
                         ::testing::Values(1, 2, 3, 5, 10, 15));

// --- voting algebra --------------------------------------------------------------

StageProbs uniformExcept(Stage s, std::vector<float> dist) {
  StageProbs p;
  for (int i = 0; i < kNumStages; ++i) {
    const auto n = static_cast<size_t>(numClasses(static_cast<Stage>(i)));
    p.probs[static_cast<size_t>(i)].assign(n, 1.0F / static_cast<float>(n));
  }
  p.probs[static_cast<size_t>(s)] = std::move(dist);
  return p;
}

class VotingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VotingProperty, DecisionInvariants) {
  Rng rng(GetParam());
  const Engine e{EngineConfig{}};  // voting needs no trained model

  // Random stage-1 distributions for a variable with 1..6 VUCs.
  const int n = static_cast<int>(rng.uniformInt(1, 6));
  std::vector<StageProbs> probs;
  for (int i = 0; i < n; ++i) {
    const auto p1 = static_cast<float>(rng.uniform(0.01, 0.99));
    probs.push_back(uniformExcept(Stage::S1, {1.0F - p1, p1}));
  }

  const VariableDecision d = e.voteVariable(probs, 0.9F, true);

  // Permutation invariance.
  std::vector<StageProbs> shuffled = probs;
  rng.shuffle(shuffled);
  EXPECT_EQ(e.voteVariable(shuffled, 0.9F, true).stageClass,
            d.stageClass);

  // Duplication invariance: voting on the doubled multiset agrees (sums
  // scale by exactly 2).
  std::vector<StageProbs> doubled = probs;
  doubled.insert(doubled.end(), probs.begin(), probs.end());
  EXPECT_EQ(e.voteVariable(doubled, 0.9F, true).stageClass, d.stageClass);

  // The final type's root-to-leaf path is consistent with the per-stage
  // classes the vote reports.
  const StagePath path = pathOf(d.finalType);
  for (int i = 0; i < path.length; ++i) {
    const Stage s = path.stages[static_cast<size_t>(i)];
    EXPECT_EQ(stageClassOf(s, d.finalType),
              d.stageClass[static_cast<size_t>(s)]);
  }

  // Single-VUC voting without clipping = plain argmax routing.
  const std::vector<StageProbs> one = {probs[0]};
  const VariableDecision d1 = e.voteVariable(one, 0.9F, false);
  const int s1 = probs[0].probs[0][1] > probs[0].probs[0][0] ? 1 : 0;
  EXPECT_EQ(d1.stageClass[0], s1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VotingProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// The clip comparison is inclusive (z >= voteClip, formula 3): a vote at
// EXACTLY the threshold is promoted to 1.0. Three hand-built VUCs at
// threshold 0.9 distinguish >= from >: with inclusive clipping class 0
// collects 1.0 + 0.28 + 0.29 = 1.57 against 0.1 + 0.72 + 0.71 = 1.53 and
// wins; without clipping (or with a threshold just above 0.9) class 0 only
// reaches 0.9 + 0.28 + 0.29 = 1.47 and loses. All margins are ~0.04,
// orders of magnitude above float rounding at this scale.
TEST(VotingClip, BoundaryValueIsClippedInclusively) {
  const Engine e{EngineConfig{}};
  const std::vector<StageProbs> probs = {
      uniformExcept(Stage::S1, {0.9F, 0.1F}),   // sits exactly at the clip
      uniformExcept(Stage::S1, {0.28F, 0.72F}),
      uniformExcept(Stage::S1, {0.29F, 0.71F}),
  };
  // z == voteClip must clip: class 0 wins.
  EXPECT_EQ(e.voteVariable(probs, 0.9F, true).stageClass[0], 0);
  // Same votes, clipping off: class 1 wins — proving the clip decided it.
  EXPECT_EQ(e.voteVariable(probs, 0.9F, false).stageClass[0], 1);
  // Threshold nudged above the vote: 0.9 no longer clips, class 1 wins —
  // proving the comparison is >= and not >.
  EXPECT_EQ(e.voteVariable(probs, 0.9001F, true).stageClass[0], 1);
}

// Values on the 1/64 grid are exactly representable, so float sums are
// exact regardless of accumulation order — the properties below hold
// bit-for-bit, not just approximately.
std::vector<float> gridDist(Rng& rng, int classes) {
  std::vector<float> d(static_cast<size_t>(classes));
  for (float& v : d) {
    v = static_cast<float>(rng.uniformInt(1, 64)) / 64.0F;
  }
  return d;
}

StageProbs gridProbs(Rng& rng) {
  StageProbs p;
  for (int s = 0; s < kNumStages; ++s) {
    p.probs[static_cast<size_t>(s)] =
        gridDist(rng, numClasses(static_cast<Stage>(s)));
  }
  return p;
}

class VotingAlgebra : public ::testing::TestWithParam<uint64_t> {};

// clipEnabled=false is plain summed voting, i.e. the argmax of the
// per-class MEAN vote (sums and means share an argmax for n > 0). The
// reference winner is recomputed in double; grid values make both sides
// exact, so the equality is strict on every stage.
TEST_P(VotingAlgebra, ClipDisabledEqualsPlainAveraging) {
  Rng rng(GetParam());
  const Engine e{EngineConfig{}};
  const int n = static_cast<int>(rng.uniformInt(1, 9));
  std::vector<StageProbs> probs;
  for (int i = 0; i < n; ++i) probs.push_back(gridProbs(rng));

  const VariableDecision d = e.voteVariable(probs, 0.9F, false);
  for (int s = 0; s < kNumStages; ++s) {
    const int classes = numClasses(static_cast<Stage>(s));
    // Sums, not means: dividing by n would reintroduce rounding, and for
    // n > 0 the argmax is the same either way.
    std::vector<double> sum(static_cast<size_t>(classes), 0.0);
    for (const StageProbs& p : probs) {
      for (int c = 0; c < classes; ++c) {
        sum[static_cast<size_t>(c)] += static_cast<double>(
            p.probs[static_cast<size_t>(s)][static_cast<size_t>(c)]);
      }
    }
    const int expect = static_cast<int>(
        std::max_element(sum.begin(), sum.end()) - sum.begin());
    EXPECT_EQ(d.stageClass[static_cast<size_t>(s)], expect)
        << "stage " << stageName(static_cast<Stage>(s));
  }
}

// The winner never depends on VUC order, clipping on or off, at EVERY
// stage of the tree (the older VotingProperty covers Stage 1 only).
TEST_P(VotingAlgebra, WinnerIsPermutationInvariantOnAllStages) {
  Rng rng(GetParam() ^ 0xA5A5);
  const Engine e{EngineConfig{}};
  const int n = static_cast<int>(rng.uniformInt(2, 10));
  std::vector<StageProbs> probs;
  for (int i = 0; i < n; ++i) probs.push_back(gridProbs(rng));

  for (const bool clip : {true, false}) {
    const VariableDecision d = e.voteVariable(probs, 0.9F, clip);
    std::vector<StageProbs> shuffled = probs;
    for (int trial = 0; trial < 4; ++trial) {
      rng.shuffle(shuffled);
      const VariableDecision ds = e.voteVariable(shuffled, 0.9F, clip);
      EXPECT_EQ(ds.stageClass, d.stageClass) << "clip=" << clip;
      EXPECT_EQ(ds.finalType, d.finalType) << "clip=" << clip;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VotingAlgebra,
                         ::testing::Values(2, 3, 5, 7, 11, 13, 17, 19));

// Clipping monotonicity: raising a single VUC's winning confidence above
// the threshold can only help that class.
TEST(VotingClip, PromotionNeverHurtsTheConfidentClass) {
  const Engine e{EngineConfig{}};
  for (float base = 0.55F; base < 0.9F; base += 0.05F) {
    const std::vector<StageProbs> weak = {
        uniformExcept(Stage::S1, {1.0F - base, base}),
        uniformExcept(Stage::S1, {0.6F, 0.4F}),
    };
    const std::vector<StageProbs> strong = {
        uniformExcept(Stage::S1, {0.05F, 0.95F}),  // clipped to 1.0
        uniformExcept(Stage::S1, {0.6F, 0.4F}),
    };
    const int weakCls = e.voteVariable(weak, 0.9F, true).stageClass[0];
    const int strongCls = e.voteVariable(strong, 0.9F, true).stageClass[0];
    // If the weak vote already chose class 1, the strong one must too.
    if (weakCls == 1) {
      EXPECT_EQ(strongCls, 1);
    }
  }
}

}  // namespace
}  // namespace cati
