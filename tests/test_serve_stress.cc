// The differential stress layer for cati-serve (DESIGN.md §10): seeded
// multi-client sweeps across server configurations, proving every reply the
// daemon produces is byte-identical to offline inference — whatever the
// interleaving, the client count, --jobs/--batch, the cache state, injected
// cache faults, or a storm of mid-request disconnects.
//
// gtest assertions are not thread-safe, so client threads record mismatches
// into a mutex-guarded list that the main thread asserts on after joining.
//
// Shares the ./cati_test_cache/ micro model (RESOURCE_LOCK micro_model_cache).
// Per-client request counts scale with the CATI_FUZZ_ITERS budget
// (tests/support/env.h), same knob as the fuzz suite.
#include <filesystem>
#include <memory>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/obs.h"
#include "loader/image.h"
#include "serve/analysis.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "support/env.h"
#include "support/micro_model.h"

namespace cati::serve {
namespace {

namespace stdfs = std::filesystem;

struct Variant {
  std::string image;  ///< serialized container bytes, the request payload
  std::string report;
  std::string diagsText;
};

/// The image variants every sweep draws from, with their offline-computed
/// expected outputs (the differential reference, computed once).
std::vector<Variant> makeVariants() {
  Engine engine = testsupport::cachedMicroEngine();
  const auto bins = testsupport::microBinaries();
  std::vector<Variant> out;
  for (const size_t idx : {size_t{0}, size_t{1}}) {
    for (const bool stripped : {true, false}) {
      Variant v;
      loader::Image img = loader::buildImage(bins.at(idx));
      if (stripped) loader::strip(img);
      std::ostringstream os;
      loader::write(img, os);
      v.image = std::move(os).str();

      DiagList imgDiags;
      std::istringstream is(v.image);
      const auto reread = loader::tryRead(is, imgDiags);
      EXPECT_TRUE(reread.has_value());
      par::ThreadPool pool(1);
      const AnalyzeResult r = analyzeImage(engine, *reread, &pool, 0, {});
      v.report = r.report;
      std::ostringstream ds;
      print(imgDiags, ds);
      print(r.diags, ds);
      v.diagsText = ds.str();
      out.push_back(std::move(v));
    }
  }
  return out;
}

const std::vector<Variant>& variants() {
  static const std::vector<Variant> v = makeVariants();
  return v;
}

/// Thread-safe mismatch sink; client threads must not touch gtest.
class Failures {
 public:
  void add(std::string msg) {
    const std::lock_guard<std::mutex> lock(mu_);
    msgs_.push_back(std::move(msg));
  }
  std::string summary() {
    const std::lock_guard<std::mutex> lock(mu_);
    std::string s;
    for (const auto& m : msgs_) s += m + "\n";
    return s;
  }
  bool empty() {
    const std::lock_guard<std::mutex> lock(mu_);
    return msgs_.empty();
  }

 private:
  std::mutex mu_;
  std::vector<std::string> msgs_;
};

/// One client's life: connect, fire `requests` seeded analyze calls, compare
/// every reply byte-for-byte against the offline reference.
void runClient(const sock::Address& addr, uint32_t seed, int requests,
               Failures& failures) {
  try {
    Client client(addr);
    std::mt19937 rng(seed);
    for (int r = 0; r < requests; ++r) {
      const Variant& v =
          variants()[rng() % variants().size()];
      AnalyzeRequest req;
      req.image = v.image;
      const Frame f = client.analyze(req);
      if (f.type != MsgType::kReport) {
        failures.add("seed " + std::to_string(seed) + " req " +
                     std::to_string(r) + ": non-report reply type " +
                     std::to_string(static_cast<uint32_t>(f.type)));
        return;
      }
      const ReportReply rep = decodeReportReply(f.payload);
      if (rep.report != v.report || rep.diagsText != v.diagsText) {
        failures.add("seed " + std::to_string(seed) + " req " +
                     std::to_string(r) + ": reply differs from offline");
      }
    }
  } catch (const std::exception& e) {
    failures.add("seed " + std::to_string(seed) + ": " + e.what());
  }
}

class ServeStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::setEnabled(true);
    dir_ = stdfs::temp_directory_path() /
           ("cati_stress_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    stdfs::remove_all(dir_);
    stdfs::create_directories(dir_);
  }
  void TearDown() override {
    fault::configureForTest("");
    stdfs::remove_all(dir_);
  }

  sock::Address unixAddr(const std::string& name) {
    return sock::Address::parse("unix:" + (dir_ / name).string());
  }

  stdfs::path dir_;
};

// The headline sweep: client counts {1,4,16} x jobs {1,2} x batch {1,8},
// seeded request mixes, every reply compared byte-for-byte to the offline
// reference. Covers cache cold/warm (the first request per image is a miss,
// repeats are hits) in the same pass.
TEST_F(ServeStressTest, SweepClientsJobsBatch) {
  Engine engine = testsupport::cachedMicroEngine();
  (void)variants();  // compute the reference before any server holds engine

  int cfgIdx = 0;
  for (const int jobs : {1, 2}) {
    for (const int batch : {1, 8}) {
      std::string sockName = "s";
      sockName += std::to_string(cfgIdx);
      sockName += ".sock";
      ServerConfig cfg;
      cfg.listen = unixAddr(sockName);
      cfg.jobs = jobs;
      cfg.batch = batch;
      cfg.maxQueue = 256;
      cfg.cacheBytes = 1 << 20;
      Server server(engine, cfg);
      server.start();

      for (const int clients : {1, 4, 16}) {
        Failures failures;
        std::vector<std::thread> threads;
        threads.reserve(static_cast<size_t>(clients));
        for (int c = 0; c < clients; ++c) {
          const uint32_t seed = static_cast<uint32_t>(
              0x5EED0000 + cfgIdx * 100 + clients * 10 + c);
          threads.emplace_back([&, seed] {
            runClient(server.bound(), seed,
                      testsupport::scaledIters(3), failures);
          });
        }
        for (auto& t : threads) t.join();
        EXPECT_TRUE(failures.empty())
            << "jobs=" << jobs << " batch=" << batch
            << " clients=" << clients << "\n"
            << failures.summary();
      }
      server.stop();
      ++cfgIdx;
    }
  }
}

// Injected cache faults while serving: a failing cache write must cost only
// the caching (serve.cache.write_failed), never the correctness of a reply;
// a corrupted on-disk entry must be recomputed, not served.
TEST_F(ServeStressTest, FaultsDuringServingNeverCorruptReplies) {
  Engine engine = testsupport::cachedMicroEngine();
  (void)variants();

  ServerConfig cfg;
  cfg.listen = unixAddr("f.sock");
  cfg.cacheBytes = 1 << 20;
  cfg.cacheDir = dir_ / "cache";
  Server server(engine, cfg);
  server.start();

  for (const char* spec :
       {"fail@serve.cache.write:1", "fail@fs.fsync:1", "fail@fs.rename:1",
        "truncate@fs.write:1", "fail@serve.cache.read:1", ""}) {
    fault::configureForTest(spec);
    Failures failures;
    runClient(server.bound(), /*seed=*/0xFA017, testsupport::scaledIters(4),
              failures);
    EXPECT_TRUE(failures.empty())
        << "under fault spec '" << spec << "'\n"
        << failures.summary();
  }
  fault::configureForTest("");

  // Clean sweep over every variant: any torn entry a truncate fault left
  // behind is detected on lookup, deleted and recomputed — while the reply
  // stays correct throughout.
  {
    Client client(server.bound());
    for (const Variant& v : variants()) {
      AnalyzeRequest req;
      req.image = v.image;
      const Frame f = client.analyze(req);
      ASSERT_EQ(f.type, MsgType::kReport);
      EXPECT_EQ(decodeReportReply(f.payload).report, v.report);
    }
  }

  // After all that abuse the cache directory holds only valid entries: a
  // fresh recovery scan must not find corruption.
  server.stop();
  const uint64_t corrupt0 = obs::counter("serve.cache.corrupt").value();
  ResultCache recovered(1 << 20, dir_ / "cache");
  EXPECT_GE(recovered.entries(), variants().size());
  EXPECT_EQ(obs::counter("serve.cache.corrupt").value(), corrupt0);
}

// A storm of clients that vanish mid-request must not stall the batch loop
// or poison the replies of the well-behaved.
TEST_F(ServeStressTest, DisconnectStormLeavesServerServing) {
  Engine engine = testsupport::cachedMicroEngine();
  (void)variants();

  ServerConfig cfg;
  cfg.listen = unixAddr("d.sock");
  cfg.maxQueue = 256;
  cfg.cacheBytes = 1 << 20;
  Server server(engine, cfg);
  server.start();

  Failures failures;
  std::vector<std::thread> threads;
  for (int c = 0; c < 12; ++c) {
    const uint32_t seed = static_cast<uint32_t>(0xD15C0 + c);
    if (c % 2 == 0) {
      // Rude: send an analyze request and hang up without reading.
      threads.emplace_back([&, seed] {
        try {
          Client client(server.bound());
          AnalyzeRequest req;
          req.image = variants()[seed % variants().size()].image;
          client.send(MsgType::kAnalyze, encodeAnalyzeRequest(req));
          client.close();
        } catch (const std::exception&) {
          // A send racing the server's own drop is fine.
        }
      });
    } else {
      threads.emplace_back([&, seed] {
        runClient(server.bound(), seed,
                      testsupport::scaledIters(3), failures);
      });
    }
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(failures.empty()) << failures.summary();

  // And the server is still healthy afterwards.
  Failures post;
  runClient(server.bound(), /*seed=*/0xAF7E2, testsupport::scaledIters(2),
            post);
  EXPECT_TRUE(post.empty()) << post.summary();
  server.stop();
}

}  // namespace
}  // namespace cati::serve
