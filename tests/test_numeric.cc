// Unit tests for the shared numerically-stable primitives (src/common/
// numeric.h) — the single softmax/log-sum-exp implementation that the NN
// head, the Naive Bayes posterior, and the voting argmax all delegate to.
#include "common/numeric.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace cati::num {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Argmax, FirstMaximalWinsTies) {
  const std::vector<float> v = {0.5F, 2.0F, 2.0F, 1.0F};
  EXPECT_EQ(argmax(v), 1);
}

TEST(Argmax, SingleAndEmpty) {
  const std::vector<float> one = {-3.0F};
  EXPECT_EQ(argmax(one), 0);
  EXPECT_EQ(argmax(std::span<const float>{}), -1);
}

TEST(Softmax, SumsToOneOnOrdinaryLogits) {
  const std::vector<float> logits = {1.0F, -2.0F, 0.5F, 3.0F};
  std::vector<float> probs(4);
  softmax(logits, probs);
  float sum = 0.0F;
  for (const float p : probs) {
    EXPECT_GT(p, 0.0F);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0F, 1e-5F);
  EXPECT_EQ(argmax(probs), 3);
}

TEST(Softmax, LargeLogitsDoNotOverflow) {
  // Naive exp(1000) is inf in float; the max-shift must keep this finite.
  const std::vector<float> logits = {1000.0F, 999.0F, 998.0F};
  std::vector<float> probs(3);
  softmax(logits, probs);
  for (const float p : probs) {
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GE(p, 0.0F);
  }
  EXPECT_GT(probs[0], probs[1]);
  EXPECT_GT(probs[1], probs[2]);
  float sum = 0.0F;
  for (const float p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0F, 1e-5F);
}

TEST(Softmax, AllEqualLogitsGiveUniform) {
  const std::vector<float> logits(5, -40.0F);
  std::vector<float> probs(5);
  softmax(logits, probs);
  for (const float p : probs) EXPECT_EQ(p, 0.2F);
}

TEST(Softmax, SingleClassIsCertain) {
  const std::vector<float> logits = {-123.0F};
  std::vector<float> probs(1);
  softmax(logits, probs);
  EXPECT_EQ(probs[0], 1.0F);
}

TEST(SoftmaxFromLog, MatchesSoftmaxOnSmallValues) {
  const std::vector<double> logp = {-1.5, -0.25, -3.0};
  std::vector<float> out(3);
  softmaxFromLog(logp, out);
  const std::vector<float> logits = {-1.5F, -0.25F, -3.0F};
  std::vector<float> ref(3);
  softmax(logits, ref);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_NEAR(out[i], ref[i], 1e-6F);
}

TEST(SoftmaxFromLog, ExtremeLogScoresStayNormalized) {
  // Typical Naive Bayes territory: hugely negative log-posteriors whose
  // direct exp underflows to zero in double.
  const std::vector<double> logp = {-1e5, -1e5 - 1.0, -1e5 - 2.0};
  std::vector<float> out(3);
  softmaxFromLog(logp, out);
  float sum = 0.0F;
  for (const float p : out) {
    EXPECT_TRUE(std::isfinite(p));
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0F, 1e-5F);
  EXPECT_GT(out[0], out[1]);
}

TEST(SoftmaxFromLog, SingleClassIsCertain) {
  const std::vector<double> logp = {-987.0};
  std::vector<float> out(1);
  softmaxFromLog(logp, out);
  EXPECT_EQ(out[0], 1.0F);
}

TEST(LogSumExp, MatchesDirectSumOnSmallValues) {
  const std::vector<double> v = {0.1, -1.0, 2.5};
  double direct = 0.0;
  for (const double x : v) direct += std::exp(x);
  EXPECT_NEAR(logSumExp(v), std::log(direct), 1e-12);
}

TEST(LogSumExp, LargeValuesDoNotOverflow) {
  const std::vector<double> v = {1000.0, 1000.0};
  EXPECT_NEAR(logSumExp(v), 1000.0 + std::log(2.0), 1e-9);
  const std::vector<double> tiny = {-1e6, -1e6};
  EXPECT_NEAR(logSumExp(tiny), -1e6 + std::log(2.0), 1e-6);
}

TEST(LogSumExp, EdgeCases) {
  EXPECT_EQ(logSumExp(std::span<const double>{}), -kInf);
  const std::vector<double> allNegInf = {-kInf, -kInf};
  EXPECT_EQ(logSumExp(allNegInf), -kInf);
  const std::vector<double> one = {3.25};
  EXPECT_NEAR(logSumExp(one), 3.25, 1e-12);
}

}  // namespace
}  // namespace cati::num
