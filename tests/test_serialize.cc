// Tests for the binary serialization helpers (common/serialize.h): POD /
// string / vector round-trips, header validation, truncation and corrupt
// length guards.
#include "common/serialize.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

namespace cati::io {
namespace {

TEST(Serialize, PodRoundTrip) {
  std::stringstream ss;
  Writer w(ss);
  w.pod<int32_t>(-42);
  w.pod<uint64_t>(1ULL << 60);
  w.pod<float>(3.25F);
  w.pod<uint8_t>(7);
  Reader r(ss);
  EXPECT_EQ(r.pod<int32_t>(), -42);
  EXPECT_EQ(r.pod<uint64_t>(), 1ULL << 60);
  EXPECT_FLOAT_EQ(r.pod<float>(), 3.25F);
  EXPECT_EQ(r.pod<uint8_t>(), 7);
}

TEST(Serialize, StringRoundTrip) {
  std::stringstream ss;
  Writer w(ss);
  w.str("");
  w.str("hello world");
  w.str(std::string("emb\0edded", 9));
  Reader r(ss);
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.str(), std::string("emb\0edded", 9));
}

TEST(Serialize, VectorRoundTrip) {
  std::stringstream ss;
  Writer w(ss);
  const std::vector<float> v = {1.0F, -2.5F, 0.0F};
  const std::vector<int8_t> e;
  w.vec(v);
  w.vec(e);
  Reader r(ss);
  EXPECT_EQ(r.vec<float>(), v);
  EXPECT_TRUE(r.vec<int8_t>().empty());
}

TEST(Serialize, TruncatedPodThrows) {
  std::stringstream ss;
  Writer w(ss);
  w.pod<uint8_t>(1);
  Reader r(ss);
  r.pod<uint8_t>();
  EXPECT_THROW(r.pod<uint64_t>(), std::runtime_error);
}

TEST(Serialize, TruncatedStringThrows) {
  std::stringstream full;
  Writer w(full);
  w.str("0123456789");
  std::string bytes = full.str();
  bytes.resize(bytes.size() - 4);
  std::stringstream cut(bytes);
  Reader r(cut);
  EXPECT_THROW(r.str(), std::runtime_error);
}

TEST(Serialize, CorruptLengthGuard) {
  // A length prefix of ~2^63 must be rejected before allocation.
  std::stringstream ss;
  Writer w(ss);
  w.pod<uint64_t>(1ULL << 62);
  Reader r(ss);
  EXPECT_THROW(r.str(), std::runtime_error);
}

TEST(Serialize, HeaderMatch) {
  std::stringstream ss;
  Writer w(ss);
  writeHeader(w, 0xabcd1234, 3);
  Reader r(ss);
  EXPECT_NO_THROW(expectHeader(r, 0xabcd1234, 3, "test"));
}

TEST(Serialize, HeaderBadMagicThrows) {
  std::stringstream ss;
  Writer w(ss);
  writeHeader(w, 0x11111111, 1);
  Reader r(ss);
  EXPECT_THROW(expectHeader(r, 0x22222222, 1, "test"), std::runtime_error);
}

TEST(Serialize, HeaderBadVersionThrows) {
  std::stringstream ss;
  Writer w(ss);
  writeHeader(w, 0x11111111, 2);
  Reader r(ss);
  EXPECT_THROW(expectHeader(r, 0x11111111, 1, "test"), std::runtime_error);
}

}  // namespace
}  // namespace cati::io
