// Tests for the binary serialization helpers (common/serialize.h): POD /
// string / vector round-trips, header validation, truncation and corrupt
// length guards.
#include "common/serialize.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>

namespace cati::io {
namespace {

TEST(Serialize, PodRoundTrip) {
  std::stringstream ss;
  Writer w(ss);
  w.pod<int32_t>(-42);
  w.pod<uint64_t>(1ULL << 60);
  w.pod<float>(3.25F);
  w.pod<uint8_t>(7);
  Reader r(ss);
  EXPECT_EQ(r.pod<int32_t>(), -42);
  EXPECT_EQ(r.pod<uint64_t>(), 1ULL << 60);
  EXPECT_FLOAT_EQ(r.pod<float>(), 3.25F);
  EXPECT_EQ(r.pod<uint8_t>(), 7);
}

TEST(Serialize, StringRoundTrip) {
  std::stringstream ss;
  Writer w(ss);
  w.str("");
  w.str("hello world");
  w.str(std::string("emb\0edded", 9));
  Reader r(ss);
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.str(), std::string("emb\0edded", 9));
}

TEST(Serialize, VectorRoundTrip) {
  std::stringstream ss;
  Writer w(ss);
  const std::vector<float> v = {1.0F, -2.5F, 0.0F};
  const std::vector<int8_t> e;
  w.vec(v);
  w.vec(e);
  Reader r(ss);
  EXPECT_EQ(r.vec<float>(), v);
  EXPECT_TRUE(r.vec<int8_t>().empty());
}

TEST(Serialize, TruncatedPodThrows) {
  std::stringstream ss;
  Writer w(ss);
  w.pod<uint8_t>(1);
  Reader r(ss);
  r.pod<uint8_t>();
  EXPECT_THROW(r.pod<uint64_t>(), std::runtime_error);
}

TEST(Serialize, TruncatedStringThrows) {
  std::stringstream full;
  Writer w(full);
  w.str("0123456789");
  std::string bytes = full.str();
  bytes.resize(bytes.size() - 4);
  std::stringstream cut(bytes);
  Reader r(cut);
  EXPECT_THROW(r.str(), std::runtime_error);
}

TEST(Serialize, CorruptLengthGuard) {
  // A length prefix of ~2^63 must be rejected before allocation.
  std::stringstream ss;
  Writer w(ss);
  w.pod<uint64_t>(1ULL << 62);
  Reader r(ss);
  EXPECT_THROW(r.str(), std::runtime_error);
}

TEST(Serialize, HeaderMatch) {
  std::stringstream ss;
  Writer w(ss);
  writeHeader(w, 0xabcd1234, 3);
  Reader r(ss);
  EXPECT_NO_THROW(expectHeader(r, 0xabcd1234, 3, "test"));
}

TEST(Serialize, HeaderBadMagicThrows) {
  std::stringstream ss;
  Writer w(ss);
  writeHeader(w, 0x11111111, 1);
  Reader r(ss);
  EXPECT_THROW(expectHeader(r, 0x22222222, 1, "test"), std::runtime_error);
}

TEST(Serialize, HeaderBadVersionThrows) {
  std::stringstream ss;
  Writer w(ss);
  writeHeader(w, 0x11111111, 2);
  Reader r(ss);
  EXPECT_THROW(expectHeader(r, 0x11111111, 1, "test"), std::runtime_error);
}

TEST(Serialize, Crc32KnownVector) {
  // The standard IEEE test vector: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926U);
  EXPECT_EQ(crc32("", 0), 0U);
  // Incremental == one-shot.
  const uint32_t part = crc32("12345", 5);
  EXPECT_EQ(crc32("6789", 4, part), 0xCBF43926U);
}

namespace {

std::string checksummedBytes(uint32_t magic = 0xCAFE0001, uint32_t ver = 1) {
  std::stringstream ss;
  writeChecksummed(ss, magic, ver, [](std::ostream& body) {
    Writer w(body);
    w.pod<int32_t>(1234);
    w.str("payload");
  });
  return ss.str();
}

int32_t readBack(const std::string& bytes, uint32_t ver = 1) {
  std::stringstream ss(bytes);
  return readChecksummed(ss, 0xCAFE0001, ver, "test", [](std::istream& body) {
    Reader r(body);
    const auto v = r.pod<int32_t>();
    EXPECT_EQ(r.str(), "payload");
    return v;
  });
}

}  // namespace

TEST(Serialize, ChecksummedRoundTrip) {
  EXPECT_EQ(readBack(checksummedBytes()), 1234);
}

TEST(Serialize, ChecksummedDetectsEveryBitFlipInPayload) {
  const std::string good = checksummedBytes();
  // Flip every bit of every payload byte (payload starts after
  // magic+version+length = 16 bytes): each one must be caught.
  for (size_t i = 16; i < good.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      std::string bad = good;
      bad[i] = static_cast<char>(bad[i] ^ (1 << b));
      EXPECT_THROW(readBack(bad), std::runtime_error)
          << "byte " << i << " bit " << b;
    }
  }
}

TEST(Serialize, ChecksummedTruncatedThrows) {
  const std::string good = checksummedBytes();
  for (size_t keep = 0; keep < good.size(); ++keep) {
    EXPECT_THROW(readBack(good.substr(0, keep)), std::runtime_error)
        << "kept " << keep;
  }
}

TEST(Serialize, ChecksummedWrongMagicAndFutureVersionThrow) {
  EXPECT_THROW(readBack(checksummedBytes(0xDEAD0000)), std::runtime_error);
  EXPECT_THROW(readBack(checksummedBytes(0xCAFE0001, 99)), std::runtime_error);
}

TEST(Serialize, ChecksummedZeroByteInputThrows) {
  EXPECT_THROW(readBack(""), std::runtime_error);
}

TEST(Serialize, ChecksummedTruncatedAtChunkBoundaryThrows) {
  // Regression: a file cut exactly at the 1 MiB chunk-read boundary used to
  // slip past the payload loop and surface as a confusing checksum error (or
  // worse, an EOF with no container name). It must be a CorruptError that
  // names the container and says "truncated".
  const size_t chunk = 1 << 20;
  std::stringstream ss;
  writeChecksummed(ss, 0xCAFE0001, 1, [&](std::ostream& body) {
    const std::string filler(chunk + chunk / 2, 'x');
    body.write(filler.data(),
               static_cast<std::streamsize>(filler.size()));
  });
  const std::string good = ss.str();
  // Headers are 16 bytes; cut so exactly one full chunk of payload remains.
  const std::string cut = good.substr(0, 16 + chunk);
  std::stringstream in(cut);
  try {
    readChecksummed(in, 0xCAFE0001, 1, "boundary-test",
                    [](std::istream& body) {
                      std::string sink(1 << 21, '\0');
                      body.read(sink.data(),
                                static_cast<std::streamsize>(sink.size()));
                      return 0;
                    });
    FAIL() << "truncated container was accepted";
  } catch (const CorruptError& e) {
    EXPECT_NE(std::string(e.what()).find("boundary-test"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST(Serialize, ChecksummedMissingTrailerNamesContainer) {
  // Regression: truncation exactly at the end of the payload (checksum
  // trailer missing) must name the container, not report a generic EOF.
  const std::string good = checksummedBytes();
  const std::string cut = good.substr(0, good.size() - sizeof(uint32_t));
  try {
    readBack(cut);
    FAIL() << "container without checksum trailer was accepted";
  } catch (const CorruptError& e) {
    EXPECT_NE(std::string(e.what()).find("test"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("checksum trailer"),
              std::string::npos)
        << e.what();
  }
}

TEST(Serialize, ChecksummedEmptyPayloadRoundTrip) {
  // n == 0 payload: legal, and truncating its trailer still errors cleanly.
  std::stringstream ss;
  writeChecksummed(ss, 0xCAFE0001, 1, [](std::ostream&) {});
  const std::string bytes = ss.str();
  std::stringstream in(bytes);
  EXPECT_EQ(readChecksummed(in, 0xCAFE0001, 1, "empty",
                            [](std::istream&) { return 7; }),
            7);
  std::stringstream cut(bytes.substr(0, bytes.size() - 1));
  EXPECT_THROW(readChecksummed(cut, 0xCAFE0001, 1, "empty",
                               [](std::istream&) { return 0; }),
               CorruptError);
}

TEST(Serialize, ErrorTaxonomy) {
  // Reader-side failures are CorruptError (bad bytes, exit 4), which still
  // derives std::runtime_error so older catch sites keep working.
  const std::string good = checksummedBytes();
  EXPECT_THROW(readBack(good.substr(0, good.size() / 2)), CorruptError);
  std::string flipped = good;
  flipped[20] = static_cast<char>(flipped[20] ^ 0x40);
  EXPECT_THROW(readBack(flipped), CorruptError);
}

TEST(Serialize, ChecksummedHostileLengthFieldThrows) {
  // Claimed payload length far beyond the actual bytes: must fail with a
  // clean error (and, by the chunked read, without allocating the claim).
  std::string bytes = checksummedBytes();
  const uint64_t huge = 1ULL << 33;
  std::memcpy(bytes.data() + 8, &huge, sizeof(huge));
  EXPECT_THROW(readBack(bytes), std::runtime_error);
  const uint64_t absurd = 1ULL << 60;
  std::memcpy(bytes.data() + 8, &absurd, sizeof(absurd));
  EXPECT_THROW(readBack(bytes), std::runtime_error);
}

}  // namespace
}  // namespace cati::io
