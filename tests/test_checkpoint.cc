// Checkpoint/resume training (DESIGN.md §9): the crash-sweep contract.
//
// The core claim: for a fixed seed, a run killed at ANY checkpoint boundary
// and resumed produces a final model BIT-IDENTICAL to one that never
// stopped, at any job count. The sweep uses the `stop` fault action — the
// in-process, catchable stand-in for `kill` (the real _exit(137) sweep runs
// in test_crash.cc against the cati-train binary).
//
// Also covered: checkpointing changes no training numerics, resume rejects
// mismatched hyperparameters/datasets and corrupt files, and Adam optimizer
// state round-trips exactly.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "cati/engine.h"
#include "common/errors.h"
#include "common/fault.h"
#include "common/parallel.h"
#include "corpus/corpus.h"
#include "nn/nn.h"
#include "support/micro_model.h"

namespace cati {
namespace {

namespace stdfs = std::filesystem;

/// Micro config with two epochs per stage, so every stage has a mid-stage
/// boundary (epoch 1, Adam state carried) and a stage-end boundary.
EngineConfig ckptConfig() {
  EngineConfig cfg = testsupport::microConfig();
  cfg.epochs = 2;
  cfg.maxTrainPerStage = 150;
  return cfg;
}

/// Boundaries per run with everyEpochs=1: one post-word2vec, then one per
/// epoch per stage.
constexpr int kBoundaries = 1 + kNumStages * 2;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = stdfs::temp_directory_path() /
           ("cati_ckpt_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    stdfs::remove_all(dir_);
    stdfs::create_directories(dir_);
    ds_ = testsupport::microDataset();
  }
  void TearDown() override {
    fault::configureForTest("");
    stdfs::remove_all(dir_);
  }

  std::string trainBytes(int jobs, const TrainCheckpointing* ck) {
    par::ThreadPool pool(jobs);
    Engine e(ckptConfig());
    e.train(ds_, &pool, ck);
    return testsupport::serializeEngine(e);
  }

  stdfs::path dir_;
  corpus::Dataset ds_;
};

TEST_F(CheckpointTest, CheckpointingDoesNotChangeTheModel) {
  const std::string plain = trainBytes(1, nullptr);
  const TrainCheckpointing ck{dir_, 1, false};
  EXPECT_EQ(trainBytes(1, &ck), plain);
  EXPECT_TRUE(stdfs::exists(dir_ / "train.ckpt"));
}

TEST_F(CheckpointTest, StopSweepEveryBoundaryResumesBitIdentical) {
  // The acceptance sweep: crash at boundary N for every N, resume, compare
  // final model bytes — at jobs 1 and 2 (jobs invariance must survive a
  // mid-stage resume, where the dropout-stream cursor is reconstructed).
  const std::string baseline = trainBytes(1, nullptr);
  ASSERT_EQ(trainBytes(2, nullptr), baseline)
      << "jobs invariance broken before the sweep even started";
  for (const int jobs : {1, 2}) {
    for (int boundary = 1; boundary <= kBoundaries; ++boundary) {
      const stdfs::path d =
          dir_ / ("j" + std::to_string(jobs) + "_b" + std::to_string(boundary));
      const TrainCheckpointing ck{d, 1, false};
      fault::configureForTest("stop@train.checkpoint:" +
                              std::to_string(boundary));
      bool stopped = false;
      try {
        trainBytes(jobs, &ck);
      } catch (const fault::Stop&) {
        stopped = true;
      }
      fault::configureForTest("");
      ASSERT_TRUE(stopped) << "jobs " << jobs << ": boundary " << boundary
                           << " never fired — sweep is not covering the run";
      const TrainCheckpointing rk{d, 1, true};
      EXPECT_EQ(trainBytes(jobs, &rk), baseline)
          << "jobs " << jobs << ", killed at boundary " << boundary
          << ": resumed model differs from the uninterrupted one";
    }
    // One past the last boundary: the stop must NOT fire (proves
    // kBoundaries really is every boundary, not a truncated sweep).
    const TrainCheckpointing ck{dir_ / "tail", 1, false};
    fault::configureForTest("stop@train.checkpoint:" +
                            std::to_string(kBoundaries + 1));
    EXPECT_EQ(trainBytes(jobs, &ck), baseline);
    fault::configureForTest("");
  }
}

TEST_F(CheckpointTest, ResumeWithoutCheckpointTrainsFromScratch) {
  const std::string baseline = trainBytes(1, nullptr);
  const TrainCheckpointing rk{dir_, 1, true};  // dir exists, no train.ckpt
  EXPECT_EQ(trainBytes(1, &rk), baseline);
}

TEST_F(CheckpointTest, ResumeRejectsChangedHyperparameters) {
  // Stop right after the first checkpoint so dir_ holds a valid one.
  const TrainCheckpointing ck{dir_, 1, false};
  fault::configureForTest("stop@train.checkpoint:1");
  EXPECT_THROW(trainBytes(1, &ck), fault::Stop);
  fault::configureForTest("");

  EngineConfig other = ckptConfig();
  other.lr *= 2.0F;
  par::ThreadPool pool(1);
  Engine e(other);
  const TrainCheckpointing rk{dir_, 1, true};
  try {
    e.train(ds_, &pool, &rk);
    FAIL() << "resume accepted a checkpoint written with different flags";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("configuration mismatch"),
              std::string::npos)
        << err.what();
  }
}

TEST_F(CheckpointTest, ResumeRejectsDifferentDataset) {
  const TrainCheckpointing ck{dir_, 1, false};
  fault::configureForTest("stop@train.checkpoint:1");
  EXPECT_THROW(trainBytes(1, &ck), fault::Stop);
  fault::configureForTest("");

  corpus::Dataset other = testsupport::microDataset();
  other.vucs.pop_back();  // same window, one VUC short
  par::ThreadPool pool(1);
  Engine e(ckptConfig());
  const TrainCheckpointing rk{dir_, 1, true};
  try {
    e.train(other, &pool, &rk);
    FAIL() << "resume accepted a checkpoint for a different training set";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("training-set mismatch"),
              std::string::npos)
        << err.what();
  }
}

TEST_F(CheckpointTest, ResumeRejectsCorruptCheckpoint) {
  const TrainCheckpointing ck{dir_, 1, false};
  fault::configureForTest("stop@train.checkpoint:1");
  EXPECT_THROW(trainBytes(1, &ck), fault::Stop);
  fault::configureForTest("");

  // Flip one byte deep in the container: resume must fail with a
  // CorruptError (checksum), never train from poisoned state.
  const stdfs::path p = dir_ / "train.ckpt";
  std::string bytes;
  {
    std::ifstream is(p, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    bytes = std::move(buf).str();
  }
  ASSERT_GT(bytes.size(), 64U);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  {
    std::ofstream os(p, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  par::ThreadPool pool(1);
  Engine e(ckptConfig());
  const TrainCheckpointing rk{dir_, 1, true};
  EXPECT_THROW(e.train(ds_, &pool, &rk), CorruptError);
}

TEST_F(CheckpointTest, EveryEpochsThrottlesMidStageCheckpoints) {
  // everyEpochs=2 with 2-epoch stages: only stage-end boundaries remain, so
  // the first mid-stage stop target (boundary index 2 = stage 0 epoch 1
  // under everyEpochs=1) is now stage 0's end instead — verify by resuming
  // from boundary 2 and still matching the baseline.
  const std::string baseline = trainBytes(1, nullptr);
  const TrainCheckpointing ck{dir_, 2, false};
  fault::configureForTest("stop@train.checkpoint:2");
  EXPECT_THROW(trainBytes(1, &ck), fault::Stop);
  fault::configureForTest("");
  const TrainCheckpointing rk{dir_, 2, true};
  EXPECT_EQ(trainBytes(1, &rk), baseline);
}

// --- Adam optimizer state (nn::Adam::save/load) -----------------------------

nn::Sequential tinyNet(uint64_t seed) {
  Rng rng(seed);
  return nn::makeCnn({2, 6}, 2, 3, 4, 3, 0.0F, rng);
}

void fillGrads(nn::Sequential& net, float base) {
  float x = base;
  for (nn::Param* p : net.params()) {
    for (float& g : p->grad) {
      g = x;
      x = -x * 0.75F + 0.01F;
    }
  }
}

std::string paramBytes(nn::Sequential& net) {
  std::ostringstream os;
  for (const nn::Param* p : std::as_const(net).params()) {
    os.write(reinterpret_cast<const char*>(p->value.data()),
             static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  return std::move(os).str();
}

TEST(AdamState, RoundTripContinuesBitIdentically) {
  nn::Sequential a = tinyNet(11);
  std::stringstream clone;
  a.save(clone);
  nn::Sequential b = nn::Sequential::load(clone);

  nn::Adam oa(a.params());
  for (int i = 0; i < 3; ++i) {
    fillGrads(a, 0.1F * static_cast<float>(i + 1));
    oa.step();
  }
  std::stringstream state;
  oa.save(state);

  // Fresh optimizer on the cloned net, moments restored: the next steps
  // must move both nets to bit-identical weights (this is exactly what a
  // mid-stage resume relies on — note a fresh Adam would NOT match, since
  // its bias correction restarts at t=0).
  // First sync b's weights to a's post-step values.
  std::stringstream trained;
  a.save(trained);
  b = nn::Sequential::load(trained);
  nn::Adam ob(b.params());
  ob.load(state);

  for (int i = 0; i < 2; ++i) {
    fillGrads(a, -0.05F * static_cast<float>(i + 1));
    fillGrads(b, -0.05F * static_cast<float>(i + 1));
    oa.step(0.5F);
    ob.step(0.5F);
  }
  EXPECT_EQ(paramBytes(a), paramBytes(b));
}

TEST(AdamState, LoadRejectsShapeMismatch) {
  nn::Sequential a = tinyNet(11);
  nn::Adam oa(a.params());
  fillGrads(a, 0.2F);
  oa.step();
  std::stringstream state;
  oa.save(state);

  // An optimizer bound to a differently-shaped net must refuse the blob.
  Rng rng(11);
  nn::Sequential c = nn::makeCnn({2, 6}, 2, 3, 8, 3, 0.0F, rng);
  nn::Adam oc(c.params());
  EXPECT_THROW(oc.load(state), CorruptError);
}

}  // namespace
}  // namespace cati
