// Golden-file regression tests: seeded pipeline outputs (corpus statistics
// and vote tallies) rendered to text and compared against checked-in files
// under tests/golden/. Any silent numeric drift — a generator tweak, an
// embedding/training change, a voting-formula edit — fails tier-1 here with
// a readable diff instead of slipping through as a small accuracy shift.
//
// To bless intentional changes, regenerate with tests/golden/update.sh
// (which runs this binary with CATI_UPDATE_GOLDEN=1) and review the diff.
//
// Shares the ./cati_test_cache/ micro model with test_parallel; both suites
// hold RESOURCE_LOCK micro_model_cache so the cache never races.
#include <array>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "support/golden.h"
#include "support/micro_model.h"

namespace cati {
namespace {

using testsupport::compareOrUpdate;
using testsupport::fnv1a;

TEST(Golden, CorpusStats) {
  const auto bins = testsupport::microBinaries();
  const corpus::Dataset ds = testsupport::microDataset();
  const corpus::DatasetStats st = corpus::computeStats(ds);

  std::ostringstream os;
  os << "micro_rev " << testsupport::kMicroRev << "\n";
  os << "seed " << testsupport::kMicroSeed << "\n";
  os << "binaries " << bins.size() << "\n";
  size_t funcs = 0;
  size_t insns = 0;
  for (const synth::Binary& b : bins) {
    funcs += b.funcs.size();
    insns += b.totalInstructions();
  }
  os << "functions " << funcs << "\n";
  os << "instructions " << insns << "\n";
  os << "apps " << ds.appNames.size() << "\n";
  os << "vars " << ds.vars.size() << "\n";
  os << "vucs " << ds.vucs.size() << "\n";
  os << "window " << ds.window << "\n";
  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(
                    fnv1a([&] {
                      std::ostringstream b;
                      corpus::save(ds, b);
                      return std::move(b).str();
                    }())));
  os << "dataset_fnv1a " << hex << "\n";
  for (const TypeLabel t : allTypes()) {
    size_t n = 0;
    for (const corpus::VarInfo& v : ds.vars) n += v.label == t ? 1 : 0;
    os << "label " << typeName(t) << " " << n << "\n";
  }
  os << "vars_with_1_vuc " << st.varsWith1Vuc << "\n";
  os << "vars_with_2_vucs " << st.varsWith2Vucs << "\n";
  os << "uncertain1 " << st.uncertain1 << "\n";
  os << "uncertain2 " << st.uncertain2 << "\n";

  compareOrUpdate("corpus_stats.txt", os.str());
}

TEST(Golden, VoteTallies) {
  Engine engine = testsupport::cachedMicroEngine();
  const corpus::Dataset ds = testsupport::microDataset();

  par::ThreadPool pool(par::resolveJobs());
  const std::vector<StageProbs> probs = engine.predictVucs(ds.vucs, &pool);

  std::array<size_t, kNumTypes> routeTally{};
  for (const StageProbs& p : probs) {
    ++routeTally[static_cast<size_t>(engine.routeVuc(p))];
  }

  std::array<size_t, kNumTypes> finalTally{};
  std::array<std::array<size_t, 16>, kNumStages> stageTally{};
  size_t voted = 0;
  const auto byVar = ds.vucsByVar();
  for (size_t v = 0; v < byVar.size(); ++v) {
    if (byVar[v].empty()) continue;
    std::vector<StageProbs> vp;
    vp.reserve(byVar[v].size());
    for (const uint32_t i : byVar[v]) vp.push_back(probs[i]);
    const VariableDecision d = engine.voteVariable(vp);
    ++voted;
    ++finalTally[static_cast<size_t>(d.finalType)];
    for (int s = 0; s < kNumStages; ++s) {
      ++stageTally[static_cast<size_t>(s)]
                  [static_cast<size_t>(d.stageClass[static_cast<size_t>(s)])];
    }
  }

  std::ostringstream os;
  os << "micro_rev " << testsupport::kMicroRev << "\n";
  os << "vucs " << probs.size() << "\n";
  os << "vars_voted " << voted << "\n";
  for (const TypeLabel t : allTypes()) {
    os << "route " << typeName(t) << " "
       << routeTally[static_cast<size_t>(t)] << "\n";
  }
  for (const TypeLabel t : allTypes()) {
    os << "final " << typeName(t) << " "
       << finalTally[static_cast<size_t>(t)] << "\n";
  }
  for (int s = 0; s < kNumStages; ++s) {
    os << "stage " << stageName(static_cast<Stage>(s));
    for (int c = 0; c < numClasses(static_cast<Stage>(s)); ++c) {
      os << " " << stageTally[static_cast<size_t>(s)][static_cast<size_t>(c)];
    }
    os << "\n";
  }

  compareOrUpdate("vote_tallies.txt", os.str());
}

}  // namespace
}  // namespace cati
