// Tests for the durable atomic-write layer (common/fs.h): round-trips,
// overwrite atomicity under every injected fault, temp hygiene, and the
// stale-temp sweeper. The core durability claim — no fault configuration
// can leave a torn or corrupt file at the target path — is exercised
// directly by failing every seam of the protocol.
#include "common/fs.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/errors.h"
#include "common/fault.h"
#include "common/obs.h"
#include "serve/cache.h"

namespace cati::fs {
namespace {

namespace stdfs = std::filesystem;

std::string slurp(const stdfs::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

/// Files (non-directories) under dir, as filenames.
std::vector<std::string> filesIn(const stdfs::path& dir) {
  std::vector<std::string> out;
  for (const auto& e : stdfs::directory_iterator(dir)) {
    if (e.is_regular_file()) out.push_back(e.path().filename().string());
  }
  return out;
}

class FsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = stdfs::temp_directory_path() /
           ("cati_fs_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    stdfs::remove_all(dir_);
    stdfs::create_directories(dir_);
  }
  void TearDown() override {
    fault::configureForTest("");
    stdfs::remove_all(dir_);
  }
  stdfs::path dir_;
};

TEST_F(FsTest, RoundTrip) {
  const stdfs::path target = dir_ / "out.bin";
  const std::string payload(100000, 'A');
  atomicWrite(target, [&](std::ostream& os) { os << payload; });
  EXPECT_EQ(slurp(target), payload);
  // No debris: exactly the target.
  EXPECT_EQ(filesIn(dir_), std::vector<std::string>{"out.bin"});
}

TEST_F(FsTest, OverwriteReplacesAtomically) {
  const stdfs::path target = dir_ / "out.bin";
  atomicWrite(target, [](std::ostream& os) { os << "old-contents"; });
  atomicWrite(target, [](std::ostream& os) { os << "new"; });
  EXPECT_EQ(slurp(target), "new");
}

TEST_F(FsTest, BodyThrowTouchesNothing) {
  const stdfs::path target = dir_ / "out.bin";
  atomicWrite(target, [](std::ostream& os) { os << "precious"; });
  EXPECT_THROW(atomicWrite(target,
                           [](std::ostream&) {
                             throw CorruptError("serializer blew up");
                           }),
               CorruptError);
  EXPECT_EQ(slurp(target), "precious");
  EXPECT_EQ(filesIn(dir_), std::vector<std::string>{"out.bin"});
}

TEST_F(FsTest, EveryInjectedFaultLeavesOldFileIntactAndNoDebris) {
  // The acceptance bar from DESIGN.md §9: no fault configuration may leave
  // a torn/corrupt container at the target. Fail each protocol seam in
  // turn, both as a clean error and as a short write.
  const stdfs::path target = dir_ / "model.bin";
  const std::string oldBytes = "the-previous-generation-model";
  const std::string newBytes(1 << 16, 'N');
  for (const char* site :
       {"fs.open", "fs.write", "fs.fsync", "fs.rename"}) {
    for (const char* action : {"fail", "truncate", "stop"}) {
      stdfs::remove(target);
      atomicWrite(target, [&](std::ostream& os) { os << oldBytes; });
      fault::configureForTest(std::string(action) + "@" + site + ":1");
      EXPECT_THROW(
          atomicWrite(target, [&](std::ostream& os) { os << newBytes; }),
          std::runtime_error)
          << action << "@" << site;
      fault::configureForTest("");
      EXPECT_EQ(slurp(target), oldBytes) << action << "@" << site;
      EXPECT_EQ(filesIn(dir_), std::vector<std::string>{"model.bin"})
          << action << "@" << site << ": temp debris left behind";
    }
  }
}

TEST_F(FsTest, FaultAfterRenameStillPublishesNewFile) {
  // fs.dirsync sits after the rename: an injected failure there reports an
  // error, but the new file is already visible (old-or-new, never torn).
  const stdfs::path target = dir_ / "out.bin";
  atomicWrite(target, [](std::ostream& os) { os << "old"; });
  fault::configureForTest("fail@fs.dirsync:1");
  EXPECT_THROW(
      atomicWrite(target, [](std::ostream& os) { os << "new"; }),
      IoError);
  fault::configureForTest("");
  EXPECT_EQ(slurp(target), "new");
}

TEST_F(FsTest, InjectedWriteFailureIsIoError) {
  fault::configureForTest("fail@fs.write:1");
  EXPECT_THROW(
      atomicWrite(dir_ / "x", [](std::ostream& os) { os << "data"; }),
      IoError);
}

TEST_F(FsTest, UnwritableDirectoryIsIoError) {
  EXPECT_THROW(atomicWrite(dir_ / "no-such-subdir" / "x",
                           [](std::ostream& os) { os << "data"; }),
               IoError);
}

TEST_F(FsTest, IsTempName) {
  EXPECT_TRUE(isTempName("model.bin.cati-tmp.1234"));
  EXPECT_TRUE(isTempName(dir_ / "a" / "train.ckpt.cati-tmp.7"));
  EXPECT_FALSE(isTempName("model.bin"));
  EXPECT_FALSE(isTempName("model.bin.cati-tmp."));
  EXPECT_FALSE(isTempName("model.bin.cati-tmp.12x4"));
  EXPECT_FALSE(isTempName("cati-tmp.1234"));  // no '.' before the infix
}

TEST_F(FsTest, CleanupStaleTempsSweepsOnlyTemps) {
  std::ofstream(dir_ / "keep.bin") << "k";
  std::ofstream(dir_ / "keep.bin.cati-tmp.999") << "stale";
  std::ofstream(dir_ / "other.cati-tmp.1") << "stale";
  std::ofstream(dir_ / "not-a-temp.cati-tmp.x") << "keep";
  EXPECT_EQ(cleanupStaleTemps(dir_), 2);
  auto files = filesIn(dir_);
  std::sort(files.begin(), files.end());
  EXPECT_EQ(files,
            (std::vector<std::string>{"keep.bin", "not-a-temp.cati-tmp.x"}));
  // Idempotent.
  EXPECT_EQ(cleanupStaleTemps(dir_), 0);
  // Missing directory: a no-op, not an error.
  EXPECT_EQ(cleanupStaleTemps(dir_ / "nope"), 0);
}

TEST_F(FsTest, ResultCacheDurabilityUnderInjectedFaults) {
  // The serve result cache inherits atomicWrite's durability bar: no fault
  // at any cache I/O seam may leave a torn entry, debris, or lose an entry
  // that was already published. Swept over every site the cache write path
  // crosses, including its own serve.cache.write probe.
  obs::setEnabled(true);
  const stdfs::path cdir = dir_ / "cache";
  for (const char* site : {"fs.open", "fs.write", "fs.fsync", "fs.rename",
                           "serve.cache.write"}) {
    for (const char* action : {"fail", "truncate", "stop"}) {
      stdfs::remove_all(cdir);
      serve::ResultCache cache(1 << 16, cdir);
      cache.insert("stable-key", "stable-value");

      fault::configureForTest(std::string(action) + "@" + site + ":1");
      EXPECT_THROW(cache.insert("new-key", "new-value"), std::runtime_error)
          << action << "@" << site;
      fault::configureForTest("");

      // The published entry is untouched and still served.
      EXPECT_EQ(cache.lookup("stable-key").value(), "stable-value")
          << action << "@" << site;
      // No temp debris in the cache directory.
      for (const std::string& f : filesIn(cdir)) {
        EXPECT_FALSE(isTempName(f)) << action << "@" << site << ": " << f;
      }
      // A restart over the directory recovers exactly the published entry,
      // with nothing flagged corrupt.
      const uint64_t corrupt0 =
          obs::counter("serve.cache.corrupt").value();
      serve::ResultCache fresh(1 << 16, cdir);
      EXPECT_EQ(fresh.entries(), 1U) << action << "@" << site;
      EXPECT_EQ(obs::counter("serve.cache.corrupt").value(), corrupt0)
          << action << "@" << site;
      EXPECT_EQ(fresh.lookup("stable-key").value(), "stable-value");
      // And the failed insert can simply be retried.
      fresh.insert("new-key", "new-value");
      EXPECT_EQ(fresh.lookup("new-key").value(), "new-value");
    }
  }
}

TEST_F(FsTest, AtomicWriteSweepsItsOwnTargetsStaleTemp) {
  // A crashed previous writer (different pid) left a temp for this target;
  // the next successful write removes it.
  const stdfs::path target = dir_ / "out.bin";
  std::ofstream(dir_ / "out.bin.cati-tmp.99999999") << "debris";
  atomicWrite(target, [](std::ostream& os) { os << "fresh"; });
  EXPECT_EQ(slurp(target), "fresh");
  EXPECT_EQ(filesIn(dir_), std::vector<std::string>{"out.bin"});
}

}  // namespace
}  // namespace cati::fs
