// Differential suite for the runtime-dispatched NN kernels (DESIGN.md §11).
//
// The contract under test: every ISA variant of every KernelSet member
// computes BIT-IDENTICAL results to the scalar reference — across channel
// and length sweeps chosen to hit every vector-width tail, on all-zero
// input, and on denormal input (the build never enables -ffast-math, so
// DAZ/FTZ stay off and denormals must survive every tier). Tiers the CPU
// lacks are skipped with a note, never silently passed.
//
// The CLI property leg drives the real cati-infer binary under
// CATI_KERNEL={scalar,avx2,avx512} x --jobs and byte-compares the reports:
// fp32 reports must be identical across kernels, and quantized (--quant)
// reports identical across kernels AND job counts (per-sample activation
// scales + exact int32 accumulation make batching invisible).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cati/engine.h"
#include "common/cpu.h"
#include "common/rng.h"
#include "loader/image.h"
#include "nn/kernels.h"
#include "nn/nn.h"
#include "nn/qnn.h"
#include "support/micro_model.h"

#ifndef CATI_TOOL_DIR
#define CATI_TOOL_DIR "tools"
#endif

namespace cati::nn {
namespace {

namespace stdfs = std::filesystem;

std::vector<float> randVec(size_t n, Rng& rng, float scale = 1.0F) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng.normal(0.0F, scale);
  return v;
}

/// Denormal-heavy fill: alternating-sign values far below FLT_MIN.
std::vector<float> denormVec(size_t n) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = (i % 2 == 0 ? 1.0F : -1.0F) * 1e-42F * static_cast<float>(i + 1);
  }
  return v;
}

testing::AssertionResult bitsEqual(std::span<const float> a,
                                   std::span<const float> b) {
  if (a.size() != b.size()) {
    return testing::AssertionFailure() << "size " << a.size() << " vs "
                                       << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(float)) != 0) {
      return testing::AssertionFailure()
             << "first bit difference at [" << i << "]: " << a[i] << " vs "
             << b[i];
    }
  }
  return testing::AssertionSuccess();
}

/// Parametrized over the ISA under test; compared against kScalar.
class KernelIsaTest : public testing::TestWithParam<cpu::Isa> {
 protected:
  void SetUp() override {
    if (!cpu::supported(GetParam())) {
      GTEST_SKIP() << "CPU lacks " << cpu::isaName(GetParam())
                   << "; differential leg not run on this machine";
    }
  }
  const kern::KernelSet& ref() { return kern::kernelsFor(cpu::Isa::kScalar); }
  const kern::KernelSet& dut() { return kern::kernelsFor(GetParam()); }
};

TEST_P(KernelIsaTest, Conv1dLaneMatchesScalarAcrossShapes) {
  Rng rng(0xC0417);
  // (inC, outC, k, len): full production shapes plus tails that stop short
  // of every vector width (1, 3, 5, 9) and a len-1 edge.
  const struct { int inC, outC, k, len; } shapes[] = {
      {1, 1, 3, 1},  {3, 5, 3, 7},   {4, 3, 5, 9},
      {16, 8, 3, 5}, {96, 32, 3, 21}, {32, 64, 3, 10},
  };
  for (const auto& sh : shapes) {
    const auto w = randVec(static_cast<size_t>(sh.outC) * sh.inC * sh.k, rng);
    const auto bias = randVec(static_cast<size_t>(sh.outC), rng);
    const size_t xn = static_cast<size_t>(sh.inC) * sh.len * kern::kLane;
    const size_t yn = static_cast<size_t>(sh.outC) * sh.len * kern::kLane;
    for (const auto& x : {randVec(xn, rng), std::vector<float>(xn, 0.0F),
                          denormVec(xn)}) {
      std::vector<float> ya(yn), yb(yn);
      ref().conv1dLane(w.data(), bias.data(), x.data(), ya.data(), sh.inC,
                       sh.outC, sh.k, sh.len);
      dut().conv1dLane(w.data(), bias.data(), x.data(), yb.data(), sh.inC,
                       sh.outC, sh.k, sh.len);
      EXPECT_TRUE(bitsEqual(ya, yb))
          << "conv inC=" << sh.inC << " outC=" << sh.outC << " k=" << sh.k
          << " len=" << sh.len;
    }
  }
}

TEST_P(KernelIsaTest, DenseLaneMatchesScalarAcrossShapes) {
  Rng rng(0xDE45E);
  // inF values cover every mod-4 and mod-8 tail class; outF hits the
  // unroll-by-2 remainder.
  for (const int inF : {1, 2, 3, 4, 5, 7, 8, 9, 31, 96, 320}) {
    for (const int outF : {1, 2, 3, 17, 128}) {
      const auto w = randVec(static_cast<size_t>(outF) * inF, rng);
      const auto bias = randVec(static_cast<size_t>(outF), rng);
      const size_t xn = static_cast<size_t>(inF) * kern::kLane;
      const size_t yn = static_cast<size_t>(outF) * kern::kLane;
      for (const auto& x : {randVec(xn, rng), std::vector<float>(xn, 0.0F),
                            denormVec(xn)}) {
        std::vector<float> ya(yn), yb(yn);
        ref().denseLane(w.data(), bias.data(), x.data(), ya.data(), inF, outF);
        dut().denseLane(w.data(), bias.data(), x.data(), yb.data(), inF, outF);
        EXPECT_TRUE(bitsEqual(ya, yb)) << "dense inF=" << inF
                                       << " outF=" << outF;
      }
    }
  }
}

TEST_P(KernelIsaTest, AbsMaxMatchesScalarIncludingDenormals) {
  Rng rng(0xAB5A);
  for (int n = 0; n <= 67; ++n) {
    const auto x = randVec(static_cast<size_t>(n), rng, 3.0F);
    EXPECT_EQ(ref().absMax(x.data(), n), dut().absMax(x.data(), n)) << n;
    const auto d = denormVec(static_cast<size_t>(n));
    EXPECT_EQ(ref().absMax(d.data(), n), dut().absMax(d.data(), n))
        << "denormal n=" << n;
    const std::vector<float> z(static_cast<size_t>(n), 0.0F);
    EXPECT_EQ(dut().absMax(z.data(), n), 0.0F) << "zero n=" << n;
  }
}

TEST_P(KernelIsaTest, QuantizeI8MatchesScalarAndRoundsToEven) {
  Rng rng(0x0117);
  for (int n = 1; n <= 67; n += 3) {
    for (const float invScale : {0.0F, 0.37F, 12.5F, 127.0F}) {
      auto x = randVec(static_cast<size_t>(n), rng, 2.0F);
      // Exact tie points: 2.5/invScale quantizes to round-nearest-EVEN 2.
      if (invScale > 0 && n > 2) {
        x[0] = 2.5F / invScale;
        x[1] = -3.5F / invScale;
      }
      std::vector<int8_t> qa(static_cast<size_t>(n)), qb(qa);
      ref().quantizeI8(x.data(), qa.data(), n, invScale);
      dut().quantizeI8(x.data(), qb.data(), n, invScale);
      EXPECT_EQ(qa, qb) << "n=" << n << " invScale=" << invScale;
    }
    const auto d = denormVec(static_cast<size_t>(n));
    std::vector<int8_t> qa(static_cast<size_t>(n)), qb(qa);
    ref().quantizeI8(d.data(), qa.data(), n, 127.0F);
    dut().quantizeI8(d.data(), qb.data(), n, 127.0F);
    EXPECT_EQ(qa, qb) << "denormal n=" << n;
  }
}

TEST_P(KernelIsaTest, QgemvI8MatchesScalarAndExactReference) {
  Rng rng(0x9E37);
  for (const int groups : {1, 2, 3, 8, 24, 80}) {
    for (const int outPad : {16, 32, 48}) {
      const size_t wn =
          static_cast<size_t>(groups) * outPad * kern::kQGroup;
      const size_t xn = static_cast<size_t>(groups) * kern::kQGroup;
      std::vector<int8_t> w(wn), x(xn);
      for (auto& v : w) v = static_cast<int8_t>(rng.uniformInt(-127, 127));
      for (auto& v : x) v = static_cast<int8_t>(rng.uniformInt(-127, 127));
      std::vector<int32_t> rowSum(static_cast<size_t>(outPad), 0);
      for (int o = 0; o < outPad; ++o) {
        for (int g = 0; g < groups; ++g) {
          for (int j = 0; j < kern::kQGroup; ++j) {
            rowSum[static_cast<size_t>(o)] +=
                w[(static_cast<size_t>(g) * outPad + o) * kern::kQGroup + j];
          }
        }
      }
      // Seed acc nonzero to pin the accumulate (+=) semantics.
      std::vector<int32_t> seed(static_cast<size_t>(outPad));
      for (auto& v : seed) v = static_cast<int32_t>(rng.uniformInt(-1000, 1000));
      std::vector<int32_t> accA = seed, accB = seed, accRef = seed;
      ref().qgemvI8(w.data(), rowSum.data(), x.data(), accA.data(), groups,
                    outPad);
      dut().qgemvI8(w.data(), rowSum.data(), x.data(), accB.data(), groups,
                    outPad);
      for (int o = 0; o < outPad; ++o) {
        int64_t dot = 0;
        for (int g = 0; g < groups; ++g) {
          for (int j = 0; j < kern::kQGroup; ++j) {
            const size_t wi =
                (static_cast<size_t>(g) * outPad + o) * kern::kQGroup + j;
            dot += static_cast<int64_t>(w[wi]) *
                   x[static_cast<size_t>(g) * kern::kQGroup + j];
          }
        }
        accRef[static_cast<size_t>(o)] += static_cast<int32_t>(dot);
      }
      EXPECT_EQ(accA, accRef) << "scalar vs reference, groups=" << groups;
      EXPECT_EQ(accB, accRef) << cpu::isaName(GetParam())
                              << " vs reference, groups=" << groups;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, KernelIsaTest,
                         testing::Values(cpu::Isa::kScalar, cpu::Isa::kAvx2,
                                         cpu::Isa::kAvx512),
                         [](const auto& info) {
                           return std::string(cpu::isaName(info.param));
                         });

// --- dispatched layer forward: batch {1, 8, 32} byte-identity ---------------

std::vector<float> forwardAll(const Sequential& net, std::span<const float> x,
                              int n, int batch) {
  Scratch s = net.makeScratch();
  const int outSize = net.outShape().size();
  const int inSize = net.inShape().size();
  std::vector<float> y(static_cast<size_t>(n) * outSize);
  for (int b = 0; b < n; b += batch) {
    const int take = std::min(batch, n - b);
    const auto out = net.forward(
        x.subspan(static_cast<size_t>(b) * inSize,
                  static_cast<size_t>(take) * inSize),
        take, s, Phase::kInfer);
    std::copy(out.begin(), out.end(),
              y.begin() + static_cast<size_t>(b) * outSize);
  }
  return y;
}

TEST(KernelBatch, ForwardBitIdenticalAcrossBatchSizes) {
  Rng rng(0xBA7C);
  // Conv+pool+dense pipelines over a channel/length sweep, fp32 and int8.
  const struct { int c, l, mid, out; } shapes[] = {
      {3, 7, 4, 5}, {16, 21, 8, 3}, {96, 21, 32, 17},
  };
  for (const auto& sh : shapes) {
    Sequential net({sh.c, sh.l});
    net.add(std::make_unique<Conv1d>(sh.c, sh.mid, 3, &rng));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<GlobalMaxPool>());
    net.add(std::make_unique<Linear>(sh.mid, sh.out, &rng));
    Sequential qnet = quantizeNet(net);

    const int n = 32;
    const auto x =
        randVec(static_cast<size_t>(n) * sh.c * sh.l, rng);
    for (const Sequential* m : {&net, &qnet}) {
      const auto y1 = forwardAll(*m, x, n, 1);
      const auto y8 = forwardAll(*m, x, n, 8);
      const auto y32 = forwardAll(*m, x, n, 32);
      EXPECT_TRUE(bitsEqual(y1, y8)) << "c=" << sh.c << " l=" << sh.l;
      EXPECT_TRUE(bitsEqual(y1, y32)) << "c=" << sh.c << " l=" << sh.l;
    }
  }
}

// --- CLI property: CATI_KERNEL matrix through the real cati-infer -----------

std::string toolPath(const std::string& tool) {
  return (stdfs::path(CATI_TOOL_DIR) / tool).string();
}

/// stdout of `env CMD`, asserting exit 0.
std::string capture(const std::string& cmd) {
  FILE* p = ::popen((cmd + " 2>/dev/null").c_str(), "r");
  EXPECT_NE(p, nullptr) << cmd;
  if (p == nullptr) return {};
  std::string out;
  char buf[4096];
  size_t got = 0;
  while ((got = ::fread(buf, 1, sizeof(buf), p)) > 0) out.append(buf, got);
  EXPECT_EQ(::pclose(p), 0) << cmd;
  return out;
}

TEST(KernelMatrixCli, ReportsByteIdenticalAcrossKernelsAndJobs) {
  const stdfs::path dir =
      stdfs::temp_directory_path() / "cati_kernel_matrix_test";
  stdfs::create_directories(dir);
  const std::string model = (dir / "model.bin").string();
  const std::string qmodel = (dir / "model.q.bin").string();
  const std::string img = (dir / "app.img").string();
  {
    Engine engine = testsupport::cachedMicroEngine();
    engine.saveFile(model);
    engine.quantize().saveFile(qmodel);
    const auto bins = testsupport::microBinaries();
    loader::Image image = loader::buildImage(bins.at(0));
    loader::strip(image);
    std::ofstream os(img, std::ios::binary);
    std::ostringstream buf;
    loader::write(image, buf);
    os << buf.str();
  }

  int legs = 0;
  std::string fp32Ref, quantRef;
  for (const char* isa : {"scalar", "avx2", "avx512"}) {
    if (!cpu::supported(*cpu::parseIsa(isa))) {
      std::fprintf(stderr, "note: CPU lacks %s, kernel-matrix leg skipped\n",
                   isa);
      continue;
    }
    const std::string env = std::string("CATI_KERNEL=") + isa + " ";
    const std::string fp32 =
        capture(env + toolPath("cati-infer") + " " + model + " " + img);
    ASSERT_FALSE(fp32.empty()) << isa;
    if (fp32Ref.empty()) fp32Ref = fp32;
    EXPECT_EQ(fp32, fp32Ref) << "fp32 report differs under " << isa;
    for (const int jobs : {1, 2}) {
      const std::string q = capture(env + toolPath("cati-infer") + " " +
                                    qmodel + " " + img + " --jobs " +
                                    std::to_string(jobs));
      ASSERT_FALSE(q.empty()) << isa << " jobs=" << jobs;
      if (quantRef.empty()) quantRef = q;
      EXPECT_EQ(q, quantRef)
          << "quantized report differs under " << isa << " jobs=" << jobs;
    }
    ++legs;
  }
  ASSERT_GE(legs, 1);  // scalar always runs
  stdfs::remove_all(dir);
}

TEST(KernelMatrixCli, UnknownKernelIsRejected) {
  // Capture stderr: the exit must come from the kernel resolution (a hard
  // process error before any analysis), not from the bogus file paths —
  // exit code 1 alone cannot tell those apart.
  const std::string cmd = "CATI_KERNEL=bogus " + toolPath("cati-infer") +
                          " /nonexistent /nonexistent 2>&1 >/dev/null";
  FILE* p = ::popen(cmd.c_str(), "r");
  ASSERT_NE(p, nullptr);
  std::string err;
  char buf[4096];
  size_t got = 0;
  while ((got = ::fread(buf, 1, sizeof(buf), p)) > 0) err.append(buf, got);
  const int rc = ::pclose(p);
  ASSERT_TRUE(WIFEXITED(rc));
  EXPECT_EQ(WEXITSTATUS(rc), 1);  // hard error, never a silent downgrade
  EXPECT_NE(err.find("CATI_KERNEL"), std::string::npos) << err;
  EXPECT_NE(err.find("bogus"), std::string::npos) << err;
}

}  // namespace
}  // namespace cati::nn
