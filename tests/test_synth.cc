// Tests for the synthetic compiler: determinism, ground-truth consistency,
// frame layout, dialect fingerprints, optimization-level effects and the
// statistical properties the reproduction depends on (type mix, orphan
// share, clustering).
#include "synth/synth.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "corpus/corpus.h"
#include "debuginfo/debuginfo.h"

namespace cati::synth {
namespace {

Binary smallBinary(Dialect d = Dialect::Gcc, int opt = 2, uint64_t seed = 7) {
  return generateBinary(defaultProfile("t", 0x77, 8), d, opt, seed);
}

TEST(Generator, DeterministicForSameSeed) {
  const Binary a = smallBinary();
  const Binary b = smallBinary();
  ASSERT_EQ(a.funcs.size(), b.funcs.size());
  for (size_t f = 0; f < a.funcs.size(); ++f) {
    ASSERT_EQ(a.funcs[f].insns.size(), b.funcs[f].insns.size());
    for (size_t i = 0; i < a.funcs[f].insns.size(); ++i) {
      EXPECT_EQ(asmx::toString(a.funcs[f].insns[i]),
                asmx::toString(b.funcs[f].insns[i]));
    }
    EXPECT_EQ(a.funcs[f].varOfInsn, b.funcs[f].varOfInsn);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const Binary a = smallBinary(Dialect::Gcc, 2, 7);
  const Binary b = smallBinary(Dialect::Gcc, 2, 8);
  bool differs = a.funcs.size() != b.funcs.size();
  for (size_t f = 0; !differs && f < a.funcs.size(); ++f) {
    differs = a.funcs[f].insns.size() != b.funcs[f].insns.size();
  }
  // Same profile, different seed: instruction streams should not coincide.
  if (!differs) {
    differs = asmx::toString(a.funcs[0].insns[5]) !=
              asmx::toString(b.funcs[0].insns[5]);
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, GroundTruthShape) {
  const Binary bin = smallBinary();
  for (const FunctionCode& fn : bin.funcs) {
    ASSERT_EQ(fn.insns.size(), fn.varOfInsn.size());
    ASSERT_FALSE(fn.vars.empty());
    for (const int32_t v : fn.varOfInsn) {
      EXPECT_GE(v, -1);
      EXPECT_LT(v, static_cast<int32_t>(fn.vars.size()));
    }
    // Every tagged instruction references its variable's frame slot, its
    // member area, or operates it indirectly (call-adjacent / lea'd). At
    // minimum each variable must have >= 1 tagged instruction.
    std::set<int32_t> tagged;
    for (const int32_t v : fn.varOfInsn) {
      if (v >= 0) tagged.insert(v);
    }
    EXPECT_EQ(tagged.size(), fn.vars.size()) << fn.name;
  }
}

TEST(Generator, FrameOffsetsAreDisjoint) {
  const Binary bin = smallBinary();
  for (const FunctionCode& fn : bin.funcs) {
    // Variable byte ranges must not overlap.
    std::vector<std::pair<int64_t, int64_t>> ranges;
    for (const Variable& v : fn.vars) {
      ranges.emplace_back(v.frameOffset,
                          v.frameOffset + static_cast<int64_t>(v.byteSize));
    }
    std::sort(ranges.begin(), ranges.end());
    for (size_t i = 1; i < ranges.size(); ++i) {
      EXPECT_LE(ranges[i - 1].second, ranges[i].first) << fn.name;
    }
  }
}

TEST(Generator, O0UsesRbpFrames) {
  const Binary bin = smallBinary(Dialect::Gcc, 0);
  for (const FunctionCode& fn : bin.funcs) {
    EXPECT_TRUE(fn.rbpFrame);
    EXPECT_EQ(fn.insns[0].mnem, "push");
    for (const Variable& v : fn.vars) EXPECT_LT(v.frameOffset, 0);
  }
}

TEST(Generator, GccO2UsesRspFrames) {
  const Binary bin = smallBinary(Dialect::Gcc, 2);
  for (const FunctionCode& fn : bin.funcs) {
    EXPECT_FALSE(fn.rbpFrame);
    for (const Variable& v : fn.vars) EXPECT_GT(v.frameOffset, 0);
  }
}

TEST(Generator, DialectFingerprints) {
  // GCC zeroes the return register with `mov $0x0,%eax`, Clang with
  // `xor %eax,%eax` — the idiom the §VIII compiler-ID classifier keys on.
  const auto hasIdiom = [](const Binary& bin, const char* mnem,
                           asmx::Operand::Kind firstKind) {
    for (const FunctionCode& fn : bin.funcs) {
      for (const auto& ins : fn.insns) {
        if (ins.mnem == mnem && ins.ops[0].kind == firstKind &&
            ins.ops[1].kind == asmx::Operand::Kind::Reg &&
            ins.ops[1].reg.reg == asmx::Reg::Rax) {
          return true;
        }
      }
    }
    return false;
  };
  EXPECT_TRUE(hasIdiom(smallBinary(Dialect::Gcc), "mov",
                       asmx::Operand::Kind::Imm));
  EXPECT_TRUE(hasIdiom(smallBinary(Dialect::Clang), "xor",
                       asmx::Operand::Kind::Reg));
  // GCC never zeroes with xor.
  EXPECT_FALSE(hasIdiom(smallBinary(Dialect::Gcc), "xor",
                        asmx::Operand::Kind::Reg));
}

TEST(Generator, DebugInfoMatchesGroundTruth) {
  const Binary bin = smallBinary();
  ASSERT_EQ(bin.debug.functions.size(), bin.funcs.size());
  uint64_t pc = 0;
  for (size_t f = 0; f < bin.funcs.size(); ++f) {
    const FunctionCode& fn = bin.funcs[f];
    const debuginfo::FunctionDie& die = bin.debug.functions[f];
    EXPECT_EQ(die.lowPc, pc);
    EXPECT_EQ(die.highPc, pc + fn.insns.size());
    pc = die.highPc;
    ASSERT_EQ(die.variables.size(), fn.vars.size());
    for (size_t v = 0; v < fn.vars.size(); ++v) {
      EXPECT_EQ(die.variables[v].frameOffset, fn.vars[v].frameOffset);
      const auto cls = debuginfo::classify(bin.debug, die.variables[v].typeIndex);
      ASSERT_TRUE(cls.has_value());
      EXPECT_EQ(*cls, fn.vars[v].label)
          << fn.name << " var " << fn.vars[v].name;
    }
  }
}

TEST(Generator, ProfilesControlTypeMix) {
  AppProfile p = defaultProfile("nofloat", 3, 20);
  p.typeWeights[static_cast<int>(TypeLabel::Float)] = 0;
  p.typeWeights[static_cast<int>(TypeLabel::Double)] = 0;
  p.typeWeights[static_cast<int>(TypeLabel::LongDouble)] = 0;
  const Binary bin = generateBinary(p, Dialect::Gcc, 2, 5);
  for (const FunctionCode& fn : bin.funcs) {
    for (const Variable& v : fn.vars) {
      EXPECT_NE(familyOf(v.label), Family::FloatF);
    }
  }
}

TEST(Generator, PaperTestAppsShape) {
  const auto apps = paperTestApps();
  ASSERT_EQ(apps.size(), 12U);
  EXPECT_EQ(apps[0].name, "bash");
  EXPECT_EQ(apps[9].name, "R");
  // gzip / nano / sed have no float family (Stage 3-2 "-" in the paper).
  for (const auto& app : apps) {
    if (app.name == "gzip" || app.name == "nano" || app.name == "sed") {
      EXPECT_EQ(app.typeWeights[static_cast<int>(TypeLabel::Double)], 0.0);
      EXPECT_EQ(app.typeWeights[static_cast<int>(TypeLabel::Float)], 0.0);
    }
  }
  // R is the largest app (Table VI support ordering).
  for (const auto& app : apps) {
    if (app.name != "R") {
      EXPECT_LT(app.numFunctions, apps[9].numFunctions);
    }
  }
}

TEST(Generator, CorpusCoversAllOptLevels) {
  const auto corpus = generateCorpus(2, 6, Dialect::Gcc, 9);
  ASSERT_EQ(corpus.size(), 8U);  // 2 apps x O0..O3
  std::set<int> opts;
  for (const Binary& b : corpus) opts.insert(b.optLevel);
  EXPECT_EQ(opts, (std::set<int>{0, 1, 2, 3}));
}

// Statistical properties: higher optimization produces more orphan
// variables (register promotion) — the generator's analog of the paper's
// observation that data-flow gets thinner in optimized code.
TEST(Generator, OptimizationIncreasesOrphanShare) {
  const auto orphanShare = [](int opt) {
    const Binary bin = generateBinary(defaultProfile("o", 0x5, 60),
                                      Dialect::Gcc, opt, 11);
    const auto ds = corpus::extractGroundTruth(bin);
    return corpus::computeStats(ds).orphanShare();
  };
  EXPECT_LT(orphanShare(0), orphanShare(3));
}

TEST(Generator, TypeMixFollowsWeights) {
  // With the base weights, int + struct* should dominate (paper Table V).
  const Binary bin = generateBinary(defaultProfile("mix", 0x9, 120),
                                    Dialect::Gcc, 2, 13);
  std::map<TypeLabel, int> hist;
  int total = 0;
  for (const FunctionCode& fn : bin.funcs) {
    for (const Variable& v : fn.vars) {
      ++hist[v.label];
      ++total;
    }
  }
  EXPECT_GT(hist[TypeLabel::Int] + hist[TypeLabel::StructPtr], total / 4);
  EXPECT_LT(hist[TypeLabel::ShortInt], total / 20);
}

}  // namespace
}  // namespace cati::synth
