// Tests for the 19-type taxonomy and the six-stage tree (common/types.h).
#include "common/types.h"

#include <gtest/gtest.h>

#include <set>

namespace cati {
namespace {

TEST(Types, NamesRoundTrip) {
  for (const TypeLabel t : allTypes()) {
    const auto back = typeFromName(typeName(t));
    ASSERT_TRUE(back.has_value()) << typeName(t);
    EXPECT_EQ(*back, t);
  }
}

TEST(Types, UnknownNameRejected) {
  EXPECT_FALSE(typeFromName("union").has_value());
  EXPECT_FALSE(typeFromName("").has_value());
  EXPECT_FALSE(typeFromName("INT").has_value());
}

TEST(Types, PointerPredicateMatchesFamily) {
  for (const TypeLabel t : allTypes()) {
    EXPECT_EQ(isPointer(t), familyOf(t) == Family::Pointer) << typeName(t);
  }
}

TEST(Types, StageClassCounts) {
  EXPECT_EQ(numClasses(Stage::S1), 2);
  EXPECT_EQ(numClasses(Stage::S2_1), 3);
  EXPECT_EQ(numClasses(Stage::S2_2), 5);
  EXPECT_EQ(numClasses(Stage::S3_1), 2);
  EXPECT_EQ(numClasses(Stage::S3_2), 3);
  EXPECT_EQ(numClasses(Stage::S3_3), 9);
}

// The 19 leaves partition exactly across the tree: each type has a unique
// root-to-leaf path, and routing its per-stage classes re-derives the type.
TEST(Types, EveryTypeHasConsistentPath) {
  for (const TypeLabel t : allTypes()) {
    const StagePath p = pathOf(t);
    ASSERT_GE(p.length, 2) << typeName(t);
    ASSERT_LE(p.length, 3) << typeName(t);
    EXPECT_EQ(p.stages[0], Stage::S1);
    // Walk the path using stageClassOf and confirm it terminates at t.
    Stage s = Stage::S1;
    for (int d = 0;; ++d) {
      ASSERT_LT(d, 3);
      ASSERT_EQ(p.stages[d], s);
      const int cls = stageClassOf(s, t);
      ASSERT_GE(cls, 0) << typeName(t) << " at " << stageName(s);
      const auto leaf = leafOf(s, cls);
      const auto next = nextStage(s, cls);
      ASSERT_TRUE(leaf.has_value() != next.has_value());
      if (leaf) {
        EXPECT_EQ(*leaf, t) << typeName(t);
        EXPECT_EQ(d + 1, p.length);
        break;
      }
      s = *next;
    }
  }
}

// Types not on a stage's subtree must return -1 there.
TEST(Types, OffPathStagesReturnMinusOne) {
  EXPECT_EQ(stageClassOf(Stage::S2_1, TypeLabel::Int), -1);
  EXPECT_EQ(stageClassOf(Stage::S2_2, TypeLabel::VoidPtr), -1);
  EXPECT_EQ(stageClassOf(Stage::S3_1, TypeLabel::Int), -1);
  EXPECT_EQ(stageClassOf(Stage::S3_2, TypeLabel::Char), -1);
  EXPECT_EQ(stageClassOf(Stage::S3_3, TypeLabel::Float), -1);
  EXPECT_EQ(stageClassOf(Stage::S3_3, TypeLabel::Struct), -1);
}

// Within each stage, class indices are a bijection onto [0, numClasses).
TEST(Types, StageClassesAreDense) {
  for (int si = 0; si < kNumStages; ++si) {
    const auto s = static_cast<Stage>(si);
    std::set<int> seen;
    for (const TypeLabel t : allTypes()) {
      const int c = stageClassOf(s, t);
      if (c >= 0) {
        EXPECT_LT(c, numClasses(s));
        seen.insert(c);
      }
    }
    EXPECT_EQ(static_cast<int>(seen.size()), numClasses(s))
        << stageName(s);
  }
}

// leafOf and nextStage are mutually exclusive and exhaustive per class.
TEST(Types, LeafXorNextForEveryClass) {
  for (int si = 0; si < kNumStages; ++si) {
    const auto s = static_cast<Stage>(si);
    for (int c = 0; c < numClasses(s); ++c) {
      const auto leaf = leafOf(s, c);
      const auto next = nextStage(s, c);
      EXPECT_TRUE(leaf.has_value() != next.has_value())
          << stageName(s) << " class " << c;
    }
  }
}

TEST(Types, FamilyPartitionSizes) {
  int ptr = 0;
  int intf = 0;
  int charf = 0;
  int floatf = 0;
  for (const TypeLabel t : allTypes()) {
    switch (familyOf(t)) {
      case Family::Pointer:
        ++ptr;
        break;
      case Family::IntF:
        ++intf;
        break;
      case Family::CharF:
        ++charf;
        break;
      case Family::FloatF:
        ++floatf;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(ptr, 3);
  EXPECT_EQ(intf, 9);
  EXPECT_EQ(charf, 2);
  EXPECT_EQ(floatf, 3);
}

}  // namespace
}  // namespace cati
