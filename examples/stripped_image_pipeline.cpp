// The fully-faithful end-to-end pipeline, file formats included:
//
//   synthesize -> encode to machine code -> write image -> strip ->
//   read back -> disassemble bytes -> recover variables -> infer types
//
// This is the library-API version of what the cati-synth / cati-strip /
// cati-infer command-line tools do, and the closest analog of the paper's
// deployment scenario: the analyst only ever holds the stripped file.
#include <cstdio>
#include <sstream>

#include "cati/engine.h"
#include "corpus/corpus.h"
#include "loader/image.h"
#include "synth/synth.h"

int main() {
  using namespace cati;

  // Train a small engine (as in the quickstart).
  const auto trainBins = synth::generateCorpus(6, 14, synth::Dialect::Gcc, 77);
  const corpus::Dataset trainSet = corpus::extractAll(trainBins);
  EngineConfig cfg;
  cfg.epochs = 3;
  cfg.maxTrainPerStage = 6000;
  cfg.fcHidden = 64;
  std::printf("training on %zu VUCs...\n", trainSet.vucs.size());
  Engine engine(cfg);
  engine.train(trainSet);

  // Build a real binary image from an unseen program and strip it.
  const synth::Binary bin = synth::generateBinary(
      synth::defaultProfile("victim", 0xbead, 3), synth::Dialect::Gcc, 2,
      0x51);
  loader::Image img = loader::buildImage(bin);
  std::printf("\nbuilt image: %zu bytes of machine code, %zu symbols\n",
              img.text.size(), img.symbols.size());
  loader::strip(img);

  // Serialize + reload — the analyst's copy.
  std::stringstream file;
  loader::write(img, file);
  const loader::Image received = loader::read(file);
  std::printf("stripped image reloaded: stripped=%s, %zu import symbols "
              "survive (.dynsym)\n",
              received.stripped() ? "yes" : "no", received.symbols.size());

  // Disassemble the bytes and run inference per function.
  size_t typed = 0;
  for (const loader::LoadedFunction& fn : loader::disassemble(received)) {
    const auto vars = engine.analyzeFunction(fn.insns);
    std::printf("\n%s (%zu instructions):\n", fn.name.c_str(),
                fn.insns.size());
    for (const AnalyzedVariable& av : vars) {
      std::printf("  rsp%+-6lld -> %-22s conf %.2f (%zu VUCs)\n",
                  static_cast<long long>(av.location.offset),
                  std::string(typeName(av.type)).c_str(), av.confidence,
                  av.numVucs);
      ++typed;
    }
  }
  std::printf("\n%zu variables typed from raw bytes\n", typed);
  return 0;
}
