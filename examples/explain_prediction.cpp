// Interpretability example: why did CATI pick that type?
//
// Picks variables from an unseen binary, shows (a) the per-stage confidence
// distributions of each VUC, (b) the voting tally with the 0.9 clipping rule
// (formula 3), and (c) the occlusion importance epsilon of every window
// instruction (formula 5) — the paper's Fig. 6 view, as a library feature.
#include <algorithm>
#include <cstdio>

#include "cati/engine.h"
#include "synth/synth.h"

int main() {
  using namespace cati;

  // Train a small engine (same recipe as the quickstart).
  const auto bins = synth::generateCorpus(6, 14, synth::Dialect::Gcc, 19);
  const corpus::Dataset train = corpus::extractAll(bins);
  EngineConfig cfg;
  cfg.epochs = 3;
  cfg.maxTrainPerStage = 6000;
  cfg.fcHidden = 64;
  std::printf("training on %zu VUCs...\n", train.vucs.size());
  Engine engine(cfg);
  engine.train(train);

  // An unseen test binary WITH ground truth, so the explanation can be
  // checked against the real type.
  const synth::Binary bin = synth::generateBinary(
      synth::defaultProfile("explainee", 0xbead, 6), synth::Dialect::Gcc, 2,
      0x1234);
  const corpus::Dataset test = corpus::extractGroundTruth(bin);
  const auto byVar = test.vucsByVar();

  // Pick a variable with 3+ VUCs for an interesting vote.
  size_t chosen = 0;
  for (size_t v = 0; v < byVar.size(); ++v) {
    if (byVar[v].size() >= 3 && test.vars[v].label != TypeLabel::kCount) {
      chosen = v;
      break;
    }
  }

  std::printf("\nvariable #%zu, ground truth: %s, %zu VUCs\n\n", chosen,
              std::string(typeName(test.vars[chosen].label)).c_str(),
              byVar[chosen].size());

  // (a) per-VUC stage distributions.
  std::vector<StageProbs> probs;
  for (const uint32_t i : byVar[chosen]) {
    const corpus::Vuc& vuc = test.vucs[i];
    const StageProbs p = engine.predictVuc(vuc);
    std::printf("VUC on `%s`:\n", vuc.target().text().c_str());
    for (int s = 0; s < kNumStages; ++s) {
      std::printf("  %-9s [", std::string(stageName(static_cast<Stage>(s))).c_str());
      for (const float x : p.probs[static_cast<size_t>(s)]) {
        std::printf(" %.2f", x);
      }
      std::printf(" ]\n");
    }
    std::printf("  routed alone -> %s\n\n",
                std::string(typeName(engine.routeVuc(p))).c_str());
    probs.push_back(p);
  }

  // (b) the vote.
  const VariableDecision d = engine.voteVariable(probs);
  std::printf("voted decision (clip >= %.2f -> 1.0): %s\n\n",
              engine.config().voteClip,
              std::string(typeName(d.finalType)).c_str());

  // (c) occlusion importance on the first VUC.
  const corpus::Vuc& vuc = test.vucs[byVar[chosen][0]];
  std::printf("occlusion importance of VUC #0 at Stage 1 "
              "(epsilon < 1: instruction supported the prediction):\n");
  for (size_t k = 0; k < vuc.window.size(); ++k) {
    const double eps =
        engine.occlusionEpsilon(vuc, static_cast<int>(k), Stage::S1);
    std::printf("  %.4f %s %s\n", eps,
                static_cast<int>(k) == vuc.centre() ? ">" : " ",
                vuc.window[k].text().c_str());
  }
  return 0;
}
