// Quickstart: the whole CATI pipeline in one file.
//
//  1. generate a small synthetic training corpus (our stand-in for the
//     paper's 2141 GCC-compiled packages — see DESIGN.md);
//  2. extract labeled VUCs and train the engine (word2vec + 6 stage CNNs);
//  3. take an unseen "stripped" binary, recover its variables with the
//     data-flow pass, and infer a type for each;
//  4. print the inferred types next to the ground truth.
#include <cstdio>
#include <span>

#include "cati/engine.h"
#include "corpus/corpus.h"
#include "synth/synth.h"

int main() {
  using namespace cati;

  // --- 1. training corpus ---
  std::printf("generating training corpus...\n");
  const auto trainBins =
      synth::generateCorpus(/*numApps=*/6, /*funcsPerApp=*/12,
                            synth::Dialect::Gcc, /*seed=*/1);
  const corpus::Dataset trainSet = corpus::extractAll(trainBins);
  std::printf("  %zu binaries, %zu variables, %zu VUCs\n", trainBins.size(),
              trainSet.vars.size(), trainSet.vucs.size());

  // --- 2. train ---
  EngineConfig cfg;
  cfg.epochs = 2;
  cfg.maxTrainPerStage = 4000;
  cfg.fcHidden = 64;
  cfg.verbose = true;
  Engine engine(cfg);
  engine.train(trainSet);

  // --- 3. analyze an unseen binary, fully stripped ---
  const synth::AppProfile app =
      synth::defaultProfile("demo", /*seed=*/0xdead, /*numFunctions=*/1);
  const synth::Binary bin =
      synth::generateBinary(app, synth::Dialect::Gcc, /*optLevel=*/1,
                            /*seed=*/99);
  const synth::FunctionCode& fn = bin.funcs[0];

  std::printf("\nanalyzing stripped function '%s' (%zu instructions)\n",
              fn.name.c_str(), fn.insns.size());
  const auto inferred = engine.analyzeFunction(fn.insns);

  // --- 4. compare with ground truth ---
  std::printf("\n%-12s %-24s %-24s %s\n", "location", "inferred",
              "ground truth", "confidence");
  for (const AnalyzedVariable& av : inferred) {
    const char* truth = "?";
    for (const synth::Variable& v : fn.vars) {
      if (v.frameOffset == av.location.offset) {
        truth = typeName(v.label).data();
        break;
      }
    }
    char loc[32];
    std::snprintf(loc, sizeof loc, "%s%+lld",
                  av.location.rbpFrame ? "rbp" : "rsp",
                  static_cast<long long>(av.location.offset));
    std::printf("%-12s %-24s %-24s %.2f  (%zu VUCs)\n", loc,
                std::string(typeName(av.type)).c_str(), truth, av.confidence,
                av.numVucs);
  }
  return 0;
}
