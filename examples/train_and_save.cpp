// Production workflow example: build a corpus, train a CATI engine, save it
// to disk, reload it, and evaluate on unseen applications — the way a
// downstream user would operate the library (train once, ship the model,
// analyze many binaries).
//
// Usage: train_and_save [model-path] [apps] [funcs-per-app] [epochs]
// Defaults are sized to finish in about a minute on one core.
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "cati/engine.h"
#include "corpus/corpus.h"
#include "eval/metrics.h"
#include "synth/synth.h"

int main(int argc, char** argv) {
  using namespace cati;
  const std::filesystem::path modelPath =
      argc > 1 ? argv[1] : "cati_model.bin";
  const int apps = argc > 2 ? std::atoi(argv[2]) : 6;
  const int funcs = argc > 3 ? std::atoi(argv[3]) : 16;
  const int epochs = argc > 4 ? std::atoi(argv[4]) : 3;

  // --- train ---
  std::printf("building corpus: %d apps x 4 optimization levels x %d "
              "functions\n", apps, funcs);
  const auto bins = synth::generateCorpus(apps, funcs, synth::Dialect::Gcc, 7);
  const corpus::Dataset train = corpus::extractAll(bins);
  std::printf("  %zu variables, %zu VUCs\n", train.vars.size(),
              train.vucs.size());

  EngineConfig cfg;
  cfg.epochs = epochs;
  cfg.maxTrainPerStage = 8000;
  cfg.fcHidden = 64;
  cfg.verbose = true;
  Engine engine(cfg);
  engine.train(train);

  // --- save / reload ---
  engine.saveFile(modelPath);
  std::printf("model saved to %s (%ju bytes)\n", modelPath.c_str(),
              static_cast<uintmax_t>(std::filesystem::file_size(modelPath)));
  Engine reloaded = Engine::loadFile(modelPath);

  // --- evaluate on unseen apps ---
  std::printf("\nevaluating reloaded model on unseen applications:\n");
  eval::Table t({"app", "variables", "accuracy"});
  for (const char* name : {"demo-editor", "demo-server", "demo-codec"}) {
    const synth::Binary bin = synth::generateBinary(
        synth::defaultProfile(name, std::hash<std::string>{}(name), 10),
        synth::Dialect::Gcc, 2, 0xe7a1);
    const corpus::Dataset test = corpus::extractGroundTruth(bin);
    const auto byVar = test.vucsByVar();
    size_t ok = 0;
    size_t total = 0;
    for (size_t v = 0; v < byVar.size(); ++v) {
      if (byVar[v].empty() || test.vars[v].label == TypeLabel::kCount) {
        continue;
      }
      std::vector<StageProbs> probs;
      for (const uint32_t i : byVar[v]) {
        probs.push_back(reloaded.predictVuc(test.vucs[i]));
      }
      ++total;
      if (reloaded.voteVariable(probs).finalType == test.vars[v].label) ++ok;
    }
    t.addRow({name, std::to_string(total),
              eval::fmt2(total ? static_cast<double>(ok) /
                                     static_cast<double>(total)
                               : 0.0)});
  }
  std::printf("%s", t.str().c_str());
  return 0;
}
