// Reverse-engineering workbench example: take a stripped binary, run the
// full CATI pipeline, and print an annotated disassembly — every recovered
// variable's slot access is tagged with the inferred type, the way a
// decompiler plugin would present it (paper Fig. 2 / Fig. 3 views).
//
// Also demonstrates parsing external AT&T assembly text: the same
// annotation runs on a listing you paste in (here, an embedded objdump-style
// snippet), since the public API works on instruction streams, not on the
// generator's internal structures.
#include <cstdio>
#include <map>

#include "cati/engine.h"
#include "synth/synth.h"

namespace {

using namespace cati;

Engine trainSmallEngine() {
  const auto bins =
      synth::generateCorpus(/*numApps=*/6, /*funcsPerApp=*/14,
                            synth::Dialect::Gcc, /*seed=*/5);
  const corpus::Dataset train = corpus::extractAll(bins);
  EngineConfig cfg;
  cfg.epochs = 3;
  cfg.maxTrainPerStage = 6000;
  cfg.fcHidden = 64;
  std::printf("training engine on %zu VUCs "
              "(one-time, ~1 min on one core)...\n",
              train.vucs.size());
  Engine engine(cfg);
  engine.train(train);
  return engine;
}

std::string fmtConf(float v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

void annotate(Engine& engine, std::span<const asmx::Instruction> insns,
              const char* title) {
  const auto vars = engine.analyzeFunction(insns);

  // instruction index -> annotation
  std::map<uint32_t, std::string> notes;
  for (const AnalyzedVariable& av : vars) {
    char loc[48];
    std::snprintf(loc, sizeof loc, "%s%+lld",
                  av.location.rbpFrame ? "rbp" : "rsp",
                  static_cast<long long>(av.location.offset));
    for (const uint32_t idx : av.location.targetInsns) {
      notes[idx] = std::string(typeName(av.type)) + "  [" + loc + ", " +
                   std::to_string(av.numVucs) + " VUCs, conf " +
                   fmtConf(av.confidence) + "]";
    }
  }

  std::printf("\n=== %s ===\n", title);
  for (size_t i = 0; i < insns.size(); ++i) {
    const auto it = notes.find(static_cast<uint32_t>(i));
    std::printf("  %-44s %s\n", asmx::toString(insns[i]).c_str(),
                it == notes.end() ? "" : ("; " + it->second).c_str());
  }
  std::printf("\n%zu variables inferred\n", vars.size());
}

}  // namespace

int main() {
  using namespace cati;
  Engine engine = trainSmallEngine();

  // 1. A generated stripped binary (we know nothing about it at analysis
  //    time; ground truth exists but is not consulted).
  const synth::Binary bin = synth::generateBinary(
      synth::defaultProfile("target", 0xf00d, 2), synth::Dialect::Gcc, 1,
      0xabcd);
  annotate(engine, bin.funcs[0].insns, "generated stripped function");

  // 2. A hand-written objdump-style listing, parsed from text.
  const auto listing = asmx::parseListing(R"(
      sub $0x40,%rsp
      movl $0x100,0x8(%rsp)
      mov 0x8(%rsp),%eax
      addl $0x1,0x8(%rsp)
      cmpl $0x200,0x8(%rsp)
      jle 401040
      movss 0x2f60(%rip),%xmm0
      movss %xmm0,0x10(%rsp)
      movss 0x10(%rsp),%xmm1
      mulss %xmm0,%xmm1
      movss %xmm1,0x10(%rsp)
      lea 0x20(%rsp),%rdi
      movl $0x0,0x20(%rsp)
      movq $0x0,0x28(%rsp)
      callq 401100 <init>
      add $0x40,%rsp
      ret
  )");
  annotate(engine, listing, "hand-written listing (parsed from text)");
  return 0;
}
